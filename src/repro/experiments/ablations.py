"""Design-choice ablations promised in DESIGN.md.

Three measured arguments from the thesis text that have no figure number:

- **Filter pushdown** (§5.3): rows shipped from region servers to the
  matcher with filters pushed down versus applied client-side.
- **Store data models** (§5.2): matcher-side locality (key ranges touched
  per feature vector) under the OpenTSDB model, and region-server Store
  objects under the table-per-feature-type model, versus the adopted
  feature-type-prefix model.
- **User-parameter static features** (§7.2.1): whether the static
  features alone can distinguish two parameterizations of the same job
  (co-occurrence at window 2 vs 5; grep with different search terms)
  without and with the PARAM extension.
"""

from __future__ import annotations

from ..core.extensions import augment_with_params
from ..core.features import extract_job_features
from ..core.similarity import jaccard_index
from ..core.store import MAP_FLOW_COLUMNS, ProfileStore
from ..core.store_models import OpenTsdbStore, TablePerTypeStore
from ..core.matcher import ProfileMatcher
from ..hbase import HBaseCluster
from ..workloads.benchmark import standard_benchmark
from ..workloads.datasets import random_text_1gb
from ..workloads.jobs import cooccurrence_pairs_job, grep_job
from .common import ExperimentContext, SuiteRecord, build_store, collect_suite
from .result import ExperimentResult

__all__ = [
    "run_pushdown",
    "run_store_models",
    "run_param_features",
    "run_threshold_sensitivity",
    "run_cluster_transfer",
    "run_gbrt_weights",
    "run_filter_order",
    "run_store_scalability",
    "run_cfg_cost_correlation",
]


def run_pushdown(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """§5.3: filter pushdown versus client-side filtering."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    rows = []
    for pushdown in (True, False):
        store = ProfileStore(pushdown=pushdown)
        for key, record in records.items():
            store.put(record.full_profile, record.static, job_id=key)
        store.hbase.reset_metrics()

        matcher = ProfileMatcher(store)
        probe = next(iter(records.values()))
        matcher.match_job(probe.features)

        scanned = sum(s.metrics.rows_scanned for s in store.hbase.servers.values())
        shipped = sum(s.metrics.rows_shipped for s in store.hbase.servers.values())
        bytes_shipped = sum(
            s.metrics.bytes_shipped for s in store.hbase.servers.values()
        )
        rows.append(
            [
                "pushdown" if pushdown else "client-side",
                scanned,
                shipped,
                bytes_shipped,
            ]
        )
    return ExperimentResult(
        name="Ablation §5.3",
        title="Filter pushdown vs client-side filtering (one match_job call)",
        headers=["mode", "rows scanned", "rows shipped", "bytes shipped"],
        rows=rows,
        notes="Expected shape: pushdown ships a small fraction of the rows.",
    )


def run_store_models(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """§5.2: the adopted data model versus the two rejected ones."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    # Adopted model.
    adopted = build_store(records)
    adopted_stores = adopted.hbase.total_store_objects()

    # Table-per-feature-type model on an identical HBase cluster shape.
    per_type = TablePerTypeStore(HBaseCluster())
    for key, record in records.items():
        dynamic = {
            name: record.full_profile.map_profile.data_flow[name]
            for name in MAP_FLOW_COLUMNS
        }
        per_type.put_features(key, record.static.categorical, dynamic)
    per_type_stores = per_type.total_store_objects()

    # OpenTSDB model: locality of assembling one feature vector.
    tsdb = OpenTsdbStore(HBaseCluster())
    feature_names = list(MAP_FLOW_COLUMNS)
    for key, record in records.items():
        tsdb.put_features(
            key,
            {
                name: record.full_profile.map_profile.data_flow[name]
                for name in feature_names
            },
        )
    tsdb_scans = tsdb.scans_to_build_vector(feature_names)

    rows = [
        ["feature-type prefix (adopted)", adopted_stores, 1],
        ["table per feature type (§5.2.2)", per_type_stores, 1],
        ["OpenTSDB keys (§5.2.1)", tsdb.hbase.total_store_objects(), tsdb_scans],
    ]
    return ExperimentResult(
        name="Ablation §5.2",
        title="Store data models: region-server load and matcher locality",
        headers=["data model", "store objects", "key ranges per vector"],
        rows=rows,
        notes=(
            "Expected shape: table-per-type needs more Store objects than "
            "the adopted model; OpenTSDB needs one key range per feature "
            "instead of one per vector."
        ),
    )


def run_param_features(
    ctx: ExperimentContext | None = None, seed: int = 0
) -> ExperimentResult:
    """§7.2.1: can static features alone tell parameterizations apart?"""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    text = random_text_1gb()

    cases = [
        ("cooccurrence window", cooccurrence_pairs_job(window=2), cooccurrence_pairs_job(window=5)),
        ("grep pattern", grep_job("w0001"), grep_job("w1499xxx")),
    ]
    rows = []
    for label, job_a, job_b in cases:
        sample_a = ctx.sampler.collect(job_a, text, count=1, seed=seed)
        sample_b = ctx.sampler.collect(job_b, text, count=1, seed=seed)
        features_a = extract_job_features(job_a, text, sample_a.profile, ctx.engine)
        features_b = extract_job_features(job_b, text, sample_b.profile, ctx.engine)

        plain = jaccard_index(
            features_a.static.map_side(), features_b.static.map_side()
        )
        augmented = jaccard_index(
            augment_with_params(features_a.static, job_a).map_side(),
            augment_with_params(features_b.static, job_b).map_side(),
        )
        rows.append([label, round(plain, 3), round(augmented, 3)])
    return ExperimentResult(
        name="Ablation §7.2.1",
        title="Static distinguishability of parameterizations of one job",
        headers=["case", "Jaccard (Table 4.3 statics)", "Jaccard (+PARAM features)"],
        rows=rows,
        notes=(
            "Expected shape: plain statics are identical (Jaccard 1.0) for "
            "both parameterizations; PARAM features push the score below "
            "the θ_Jacc=0.5 threshold, so statics alone become sufficient."
        ),
    )


def run_threshold_sensitivity(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Matcher threshold sensitivity (the §4 'adjustment of the matching
    thresholds' step): DD accuracy across θ_Jacc and θ_Eucl settings."""
    from .accuracy import evaluate_pstorm
    from ..core.similarity import default_euclidean_threshold

    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    rows = []
    base_theta = default_euclidean_threshold(4)
    for jaccard in (0.3, 0.5, 0.7, 0.9):
        for euclid_scale in (0.5, 1.0, 2.0):
            correct = 0
            total = 0
            for key, record in records.items():
                from .common import twin_of
                expected = twin_of(records, key)
                store = build_store(records, exclude_keys={key})
                matcher = ProfileMatcher(
                    store,
                    jaccard_threshold=jaccard,
                    euclidean_threshold=base_theta * euclid_scale,
                )
                match = matcher.match_side(record.features, "map")
                total += 1
                if expected is not None and match.job_id == expected:
                    correct += 1
            rows.append(
                [jaccard, euclid_scale, round(correct / total, 3)]
            )
    return ExperimentResult(
        name="Ablation thresholds",
        title="DD map-side accuracy vs matcher thresholds",
        headers=["theta_Jacc", "theta_Eucl scale", "accuracy"],
        rows=rows,
        notes=(
            "Expected shape: the paper's (0.5, 1.0) operating point sits on "
            "the accuracy plateau; very strict settings lose the twin, very "
            "lax ones admit impostors into the tie-break."
        ),
    )


def run_cluster_transfer(
    ctx: ExperimentContext | None = None, seed: int = 0
) -> ExperimentResult:
    """§7.2.6: reuse of profiles across clusters, with and without the
    calibration-ratio adjustment of the cost factors."""
    from ..core.transfer import transfer_profile
    from ..hadoop.cluster import CostRates, ec2_cluster
    from ..hadoop.config import JobConfiguration
    from ..hadoop.engine import HadoopEngine
    from ..starfish.profiler import StarfishProfiler
    from ..starfish.whatif import WhatIfEngine
    from ..workloads.datasets import wikipedia_35gb
    from ..workloads.jobs import word_count_job, cooccurrence_pairs_job

    if ctx is None:
        ctx = ExperimentContext.create(seed)

    # A slower source cluster: older disks and NICs, weaker cores.
    slow_rates = CostRates(
        read_hdfs_ns_per_byte=32.0, write_hdfs_ns_per_byte=50.0,
        read_local_ns_per_byte=18.0, write_local_ns_per_byte=24.0,
        network_ns_per_byte=44.0, cpu_ns_per_record=700.0,
        compress_ns_per_byte=60.0, decompress_ns_per_byte=20.0,
    )
    source_cluster = ec2_cluster(num_workers=15, base_rates=slow_rates, seed=21)
    source_engine = HadoopEngine(source_cluster)
    source_profiler = StarfishProfiler(source_engine)

    target_cluster = ctx.cluster
    target_whatif = WhatIfEngine(target_cluster)
    config = JobConfiguration()

    rows = []
    for job in (word_count_job(), cooccurrence_pairs_job()):
        data = wikipedia_35gb()
        source_profile, __ = source_profiler.profile_job(job, data, seed=seed)
        actual = ctx.engine.run_job(job, data, config, seed=seed).runtime_seconds

        raw_prediction = target_whatif.predict(source_profile, config).runtime_seconds
        adjusted = transfer_profile(source_profile, source_cluster, target_cluster)
        adjusted_prediction = target_whatif.predict(adjusted, config).runtime_seconds

        rows.append(
            [
                job.name,
                round(actual / 60, 1),
                round(raw_prediction / 60, 1),
                round(adjusted_prediction / 60, 1),
                round(abs(raw_prediction - actual) / actual, 3),
                round(abs(adjusted_prediction - actual) / actual, 3),
            ]
        )
    return ExperimentResult(
        name="Ablation §7.2.6",
        title="Cross-cluster profile reuse: WIF prediction on the target cluster",
        headers=[
            "job", "actual min", "raw pred min", "adjusted pred min",
            "raw rel err", "adjusted rel err",
        ],
        rows=rows,
        notes=(
            "Expected shape: predictions from the slow cluster's raw profile "
            "overshoot badly; calibration-ratio adjustment brings the "
            "relative error down by an order of magnitude."
        ),
    )


def run_gbrt_weights(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Equation 1's learned weights, recovered as GBRT split-gain
    importances over the eight partial distances."""
    from ..core.gbrt import GbrtParams
    from .accuracy import train_gbrt_matcher

    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    params = GbrtParams(
        n_trees=200, shrinkage=0.05, distribution="laplace",
        cv_folds=5, train_fraction=1.0,
    )
    matcher = train_gbrt_matcher(ctx, records, params, seed=seed)
    importances = matcher.model.feature_importances(num_features=8)
    names = (
        "Jacc_map", "Eucl_DS_map", "Eucl_CS_map", "CFG_map",
        "Jacc_red", "Eucl_DS_red", "Eucl_CS_red", "CFG_red",
    )
    rows = [[name, round(float(w), 3)] for name, w in zip(names, importances)]
    return ExperimentResult(
        name="Ablation Eq. 1 weights",
        title="Learned weights of the generalized distance metric (GBRT importances)",
        headers=["partial distance", "relative weight"],
        rows=rows,
        notes=(
            "The learned metric leans on the dynamic (Euclidean) distances "
            "— the same conclusion PStorM's hand-built filter order encodes."
        ),
    )


def run_filter_order(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """§4.3's filter-order argument, measured.

    Compares the paper's dynamics-first workflow against a statics-first
    variant on (a) DD matching accuracy and (b) the match rate for NJ
    submissions, where statics-first loses the composition donors the
    dynamic filter would have kept.
    """
    from ..core.matcher import StaticsFirstMatcher
    from .common import twin_of

    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    rows = []
    for label, matcher_cls in (
        ("dynamics-first (PStorM)", ProfileMatcher),
        ("statics-first", StaticsFirstMatcher),
    ):
        dd_correct = 0
        dd_total = 0
        nj_matched = 0
        nj_total = 0
        for key, record in records.items():
            expected = twin_of(records, key)
            dd_store = build_store(records, exclude_keys={key})
            dd_match = matcher_cls(dd_store).match_side(record.features, "map")
            dd_total += 1
            if expected is not None and dd_match.job_id == expected:
                dd_correct += 1

            nj_store = build_store(records, exclude_jobs={record.job_name})
            nj_outcome = matcher_cls(nj_store).match_job(record.features)
            nj_total += 1
            nj_matched += int(nj_outcome.matched)
        rows.append(
            [
                label,
                round(dd_correct / dd_total, 3),
                round(nj_matched / nj_total, 3),
            ]
        )
    return ExperimentResult(
        name="Ablation §4.3",
        title="Filter order: dynamics-first vs statics-first",
        headers=["order", "DD map accuracy", "NJ match rate"],
        rows=rows,
        notes=(
            "Expected shape: statics-first matches far fewer never-seen "
            "jobs — the composition donors it needs were evicted before "
            "the behaviour filter could keep them (§4.3's argument)."
        ),
    )


def run_store_scalability(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    store_sizes: tuple[int, ...] = (50, 200, 800),
    seed: int = 0,
) -> ExperimentResult:
    """Chapter 5's scalability requirement, measured.

    Grows the store well past the suite by inserting perturbed copies of
    real profiles, then times one full match_job call and counts the rows
    shipped with and without pushdown — matching work must grow gently
    and pushdown must keep the client-side transfer flat-ish.
    """
    import time

    import numpy as np

    from ..starfish.profile import JobProfile, SideProfile

    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    base_records = list(records.values())
    probe = base_records[0].features
    rng = np.random.default_rng(seed)

    def perturbed_copy(record: SuiteRecord, index: int) -> JobProfile:
        profile = record.full_profile

        def jitter_side(side: SideProfile) -> SideProfile:
            factor = float(rng.lognormal(0.0, 0.2))
            return SideProfile(
                side=side.side,
                data_flow={k: v * factor for k, v in side.data_flow.items()},
                cost_factors={
                    k: v * float(rng.lognormal(0.0, 0.1))
                    for k, v in side.cost_factors.items()
                },
                statistics=dict(side.statistics),
                phase_times=dict(side.phase_times),
                num_tasks=side.num_tasks,
            )

        return JobProfile(
            job_name=f"{profile.job_name}-v{index}",
            dataset_name=profile.dataset_name,
            input_bytes=int(profile.input_bytes * float(rng.lognormal(0.0, 0.5))),
            split_bytes=profile.split_bytes,
            num_map_tasks=profile.num_map_tasks,
            num_reduce_tasks=profile.num_reduce_tasks,
            map_profile=jitter_side(profile.map_profile),
            reduce_profile=(
                jitter_side(profile.reduce_profile)
                if profile.reduce_profile
                else None
            ),
        )

    rows = []
    for size in store_sizes:
        store = ProfileStore()
        for index in range(size):
            record = base_records[index % len(base_records)]
            if index < len(base_records):
                store.put(record.full_profile, record.static, job_id=f"{record.key}")
            else:
                store.put(
                    perturbed_copy(record, index),
                    record.static,
                    job_id=f"{record.key}-v{index}",
                )

        matcher = ProfileMatcher(store)
        store.hbase.reset_metrics()
        started = time.perf_counter()
        matcher.match_job(probe)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        shipped = sum(
            s.metrics.rows_shipped for s in store.hbase.servers.values()
        )
        scanned = sum(
            s.metrics.rows_scanned for s in store.hbase.servers.values()
        )
        rows.append([size, round(elapsed_ms, 1), scanned, shipped])

    return ExperimentResult(
        name="Ablation Ch.5 scalability",
        title="Matching latency and transfer vs store size (pushdown on)",
        headers=["stored profiles", "match ms", "rows scanned", "rows shipped"],
        rows=rows,
        notes=(
            "Expected shape: scanned rows grow linearly with the store; "
            "shipped rows stay a small filtered fraction; latency stays "
            "in interactive range (and is dwarfed by the 1-task sample)."
        ),
    )


def run_cfg_cost_correlation(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig 4.3's claim across the whole suite: map-function control-flow
    complexity correlates with the measured MAP_CPU_COST, which is why
    the CFG is a usable *static* stand-in for an unstable dynamic cost."""
    from scipy import stats as scipy_stats

    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(pigmix_queries=4), seed=seed)

    complexities = []
    costs = []
    rows = []
    seen_jobs = set()
    for record in records.values():
        if record.job_name in seen_jobs:
            continue
        seen_jobs.add(record.job_name)
        cfg = record.static.map_cfg
        complexity = cfg.num_branches + cfg.num_loops
        cost = record.full_profile.map_profile.cost_factors["MAP_CPU_COST"]
        complexities.append(complexity)
        costs.append(cost)
        rows.append([record.job_name, complexity, round(cost, 0)])

    rho, pvalue = scipy_stats.spearmanr(complexities, costs)
    rows.sort(key=lambda row: row[1])
    return ExperimentResult(
        name="Ablation Fig 4.3 (suite-wide)",
        title="Map CFG complexity vs measured MAP_CPU_COST (ns/record)",
        headers=["job", "branches+loops", "MAP_CPU_COST"],
        rows=rows,
        notes=(
            f"Spearman rho={rho:.2f} (p={pvalue:.3f}). Expected shape: a "
            "clear positive rank correlation — the CFG predicts the CPU "
            "cost factor statically, the §4.1.3 premise."
        ),
    )
