"""Figure 6.1: matching accuracy of PStorM versus the information-gain
feature-selection baselines (P-features and SP-features), in the SD and
DD content states, scored per side.
"""

from __future__ import annotations

from ..workloads.benchmark import standard_benchmark
from .accuracy import evaluate_nn_baseline, evaluate_pstorm
from .common import ExperimentContext, SuiteRecord, collect_suite
from .result import ExperimentResult

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 6.1."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(), seed=seed)

    rows = []
    for state in ("SD", "DD"):
        results = [
            evaluate_pstorm(records, state),
            evaluate_nn_baseline(records, state, include_static=False),
            evaluate_nn_baseline(records, state, include_static=True),
        ]
        for result in results:
            rows.append(
                [
                    result.approach,
                    state,
                    round(result.map_accuracy, 3),
                    round(result.reduce_accuracy, 3),
                    result.map_total,
                ]
            )
    return ExperimentResult(
        name="Figure 6.1",
        title="Matching accuracy: PStorM vs information-gain feature selection",
        headers=["approach", "state", "map accuracy", "reduce accuracy", "submissions"],
        rows=rows,
        notes=(
            "Expected shape: PStorM 100% in SD and ~90% in DD (misses are "
            "exactly the twin-less profiles: co-occurrence stripes and the "
            "FIM chain); both baselines fail far more than 35% of submissions."
        ),
    )
