"""Table 6.1: the benchmark inventory itself.

Prints the (job, application domain, dataset) rows of the suite, plus the
measured shape of each entry (splits, selectivities) as a sanity check
that every benchmark member actually runs on the simulator.
"""

from __future__ import annotations

from ..workloads.benchmark import BenchmarkEntry, standard_benchmark
from .common import ExperimentContext, parallel_cells
from .result import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 6.1 with per-entry measured shape."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)

    def make_task(entry: BenchmarkEntry):
        def task() -> list[object]:
            profile, __ = ctx.profiler.profile_job(
                entry.job, entry.dataset, seed=seed
            )
            mp = profile.map_profile
            return [
                entry.job.name,
                entry.domain,
                entry.dataset.name,
                entry.dataset.num_splits,
                round(mp.data_flow["MAP_SIZE_SEL"], 3),
                round(mp.data_flow["MAP_PAIRS_SEL"], 3),
                "yes" if profile.has_reduce else "no",
            ]

        return task

    entries = standard_benchmark()
    cells = parallel_cells(
        {entry.key: make_task(entry) for entry in entries}, workers=ctx.workers
    )
    rows = [cells[entry.key] for entry in entries]
    return ExperimentResult(
        name="Table 6.1",
        title="Benchmark of Hadoop MapReduce jobs",
        headers=[
            "job", "domain", "dataset", "splits",
            "map size sel", "map pairs sel", "reduce",
        ],
        rows=rows,
    )
