"""Figure 6.3 and Table 6.2: end-to-end tuning effectiveness.

Four jobs on the 35 GB Wikipedia corpus — word count, word co-occurrence
pairs, inverted index, bigram relative frequency.  Table 6.2 reports their
runtimes under the submitted (default) configuration; Figure 6.3 reports
speedups over that baseline for the RBO and for PStorM-fed CBO tuning in
the three store content states (SD, DD, NJ).

The inverted index job is submitted with a driver-set reducer count, the
way the Cloud9/Lin-&-Dyer implementation configures itself; this is what
makes its default runtime near-optimal, so tuning gains ≈1x and the RBO's
blanket rules can only hurt it — the paper's headline cautionary case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.matcher import ProfileMatcher
from ..hadoop.config import JobConfiguration
from ..hadoop.job import MapReduceJob
from ..workloads.benchmark import standard_benchmark
from ..workloads.datasets import wikipedia_35gb
from ..workloads.jobs import (
    bigram_relative_frequency_job,
    cooccurrence_pairs_job,
    inverted_index_job,
    word_count_job,
)
from .common import ExperimentContext, SuiteRecord, build_store, collect_suite
from .result import ExperimentResult

__all__ = ["run", "evaluation_jobs", "STATES"]

STATES = ("SD", "DD", "NJ")


def evaluation_jobs() -> list[tuple[MapReduceJob, JobConfiguration]]:
    """The four Fig 6.3 jobs with their submitted configurations."""
    return [
        (word_count_job(), JobConfiguration()),
        (cooccurrence_pairs_job(), JobConfiguration()),
        (inverted_index_job(), JobConfiguration(num_reduce_tasks=27, io_sort_mb=150)),
        (bigram_relative_frequency_job(), JobConfiguration()),
    ]


@dataclass
class _JobOutcome:
    job_name: str
    default_minutes: float
    rbo_speedup: float
    state_speedups: dict[str, float]
    state_stages: dict[str, str]


def _tuned_speedup(
    ctx: ExperimentContext,
    records: dict[str, SuiteRecord],
    job: MapReduceJob,
    submitted: JobConfiguration,
    baseline_seconds: float,
    state: str,
    seed: int,
) -> tuple[float, str]:
    """Speedup of PStorM-fed CBO tuning in one store content state."""
    wiki_key = f"{job.name}@wikipedia-35gb"
    if state == "SD":
        store = build_store(records)
    elif state == "DD":
        store = build_store(records, exclude_keys={wiki_key})
    else:  # NJ: the job has never run on the cluster, on any dataset.
        store = build_store(records, exclude_jobs={job.name})

    matcher = ProfileMatcher(store)
    features = records[wiki_key].features
    outcome = matcher.match_job(features)
    if not outcome.matched:
        return 1.0, "no-match"

    wiki = wikipedia_35gb()
    result = ctx.make_cbo().optimize(outcome.profile, data_bytes=wiki.nominal_bytes)
    tuned = ctx.engine.run_job(job, wiki, result.best_config, seed=seed)
    stage = outcome.map_match.stage
    if outcome.is_composite:
        stage += "+composite"
    return baseline_seconds / tuned.runtime_seconds, stage


def run(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 6.3 (speedups) plus Table 6.2 (default runtimes)."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(), seed=seed)
    wiki = wikipedia_35gb()

    outcomes: list[_JobOutcome] = []
    for job, submitted in evaluation_jobs():
        default_exec = ctx.engine.run_job(job, wiki, submitted, seed=seed)
        baseline = default_exec.runtime_seconds

        sample = ctx.sampler.collect(job, wiki, count=1, seed=seed)
        rbo_config = ctx.make_rbo().recommend(sample.profile).config
        rbo_exec = ctx.engine.run_job(job, wiki, rbo_config, seed=seed)

        state_speedups: dict[str, float] = {}
        state_stages: dict[str, str] = {}
        for state in STATES:
            speedup, stage = _tuned_speedup(
                ctx, records, job, submitted, baseline, state, seed
            )
            state_speedups[state] = speedup
            state_stages[state] = stage
        outcomes.append(
            _JobOutcome(
                job_name=job.name,
                default_minutes=baseline / 60,
                rbo_speedup=baseline / rbo_exec.runtime_seconds,
                state_speedups=state_speedups,
                state_stages=state_stages,
            )
        )

    rows = [
        [
            o.job_name,
            round(o.default_minutes, 1),
            round(o.rbo_speedup, 2),
            round(o.state_speedups["SD"], 2),
            round(o.state_speedups["DD"], 2),
            round(o.state_speedups["NJ"], 2),
            o.state_stages["NJ"],
        ]
        for o in outcomes
    ]
    return ExperimentResult(
        name="Figure 6.3 / Table 6.2",
        title="Tuning speedups over the submitted configuration (35 GB Wikipedia)",
        headers=[
            "job",
            "default min (Tab 6.2)",
            "RBO",
            "PStorM SD",
            "PStorM DD",
            "PStorM NJ",
            "NJ match path",
        ],
        rows=rows,
        notes=(
            "Expected shape: PStorM ≥ RBO everywhere; co-occurrence pairs "
            "largest (paper ~9x, ~2x the RBO); inverted index ≈1 with the "
            "RBO below 1; NJ within a whisker of SD."
        ),
    )
