"""Matching-accuracy evaluation (§6.1): the engine behind Figs 6.1/6.2.

Accuracy is the fraction of suite submissions whose matcher answer is the
*correct* profile: the submission's own stored profile in the SD state,
its twin in the DD state.  Map-side and reduce-side answers are scored
separately, exactly as the paper plots them.  Submissions without a twin
in the DD state (co-occurrence stripes, the FIM chain) cannot be answered
correctly and therefore count against accuracy as false positives — the
source of the paper's reported DD mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.feature_selection import (
    NUMERIC_FEATURE_COLUMNS,
    NearestNeighborMatcher,
    rank_features,
)
from ..core.gbrt import GbrtParams
from ..core.gbrt_matcher import GbrtMatcher
from ..core.matcher import ProfileMatcher
from .common import ExperimentContext, SuiteRecord, build_store, twin_of

__all__ = [
    "AccuracyResult",
    "evaluate_pstorm",
    "evaluate_nn_baseline",
    "evaluate_gbrt",
    "train_gbrt_matcher",
]

#: PStorM's feature budget: 13 static (Table 4.3) + 6 dynamic (Table 4.1).
PSTORM_FEATURE_COUNT = 19


@dataclass
class AccuracyResult:
    """Side-wise matching accuracy of one approach in one content state."""

    approach: str
    state: str
    map_correct: int = 0
    map_total: int = 0
    reduce_correct: int = 0
    reduce_total: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def map_accuracy(self) -> float:
        return self.map_correct / self.map_total if self.map_total else 0.0

    @property
    def reduce_accuracy(self) -> float:
        return self.reduce_correct / self.reduce_total if self.reduce_total else 0.0

    def record(self, side: str, answered: str | None, expected: str | None) -> None:
        correct = expected is not None and answered == expected
        if side == "map":
            self.map_total += 1
            self.map_correct += int(correct)
        else:
            self.reduce_total += 1
            self.reduce_correct += int(correct)
        if not correct:
            self.mismatches.append(f"{side}: got {answered!r}, wanted {expected!r}")


def _expected_for(records: dict[str, SuiteRecord], key: str, state: str) -> str | None:
    if state == "SD":
        return key
    if state == "DD":
        return twin_of(records, key)
    raise ValueError("state must be 'SD' or 'DD'")


def evaluate_pstorm(
    records: dict[str, SuiteRecord], state: str
) -> AccuracyResult:
    """Accuracy of the multi-stage matcher in one content state."""
    result = AccuracyResult("PStorM", state)
    sd_store = build_store(records) if state == "SD" else None
    for key, record in records.items():
        expected = _expected_for(records, key, state)
        if state == "SD":
            store = sd_store
        else:
            store = build_store(records, exclude_keys={key})
        matcher = ProfileMatcher(store)

        features = record.features
        map_match = matcher.match_side(features, "map")
        result.record("map", map_match.job_id, expected)
        if features.has_reduce:
            reduce_match = matcher.match_side(features, "reduce")
            result.record("reduce", reduce_match.job_id, expected)
    return result


def evaluate_nn_baseline(
    records: dict[str, SuiteRecord], state: str, include_static: bool
) -> AccuracyResult:
    """Accuracy of the P-features / SP-features 1-NN baselines (§6.1.1)."""
    name = "SP-features" if include_static else "P-features"
    result = AccuracyResult(name, state)
    store = build_store(records)

    ranked = rank_features(store, include_static=include_static)
    numeric_names = set(NUMERIC_FEATURE_COLUMNS)
    top = [n for n, __ in ranked[:PSTORM_FEATURE_COUNT] if n in numeric_names]
    matcher = NearestNeighborMatcher(store, feature_names=top)

    for key, record in records.items():
        expected = _expected_for(records, key, state)
        exclude = {key} if state == "DD" else None
        answered = matcher.match(record.sample_profile, exclude=exclude)
        result.record("map", answered, expected)
        if record.features.has_reduce:
            result.record("reduce", answered, expected)
    return result


def train_gbrt_matcher(
    ctx: ExperimentContext,
    records: dict[str, SuiteRecord],
    params: GbrtParams,
    pairs_per_job: int = 16,
    seed: int = 0,
) -> GbrtMatcher:
    """Train one GBRT matcher on the full store (shared across states)."""
    store = build_store(records)
    return GbrtMatcher.train(
        store, ctx.whatif, params, pairs_per_job=pairs_per_job, seed=seed
    )


def evaluate_gbrt(
    ctx: ExperimentContext,
    records: dict[str, SuiteRecord],
    state: str,
    params: GbrtParams,
    label: str,
    pairs_per_job: int = 16,
    seed: int = 0,
    matcher: GbrtMatcher | None = None,
) -> AccuracyResult:
    """Accuracy of the GBRT matcher (§4.4) in one content state.

    The metric is trained once on the full store; the DD state is
    emulated by removing the submitted pair from the candidate donors,
    which matches the paper's setup of a model trained on the cluster's
    profile history.
    """
    result = AccuracyResult(label, state)
    if matcher is None:
        matcher = train_gbrt_matcher(ctx, records, params, pairs_per_job, seed)
    all_ids = matcher.store.job_ids()

    for key, record in records.items():
        expected = _expected_for(records, key, state)
        candidates = all_ids if state == "SD" else [j for j in all_ids if j != key]
        answer = matcher.match(
            record.sample_profile, record.static, candidates=candidates
        )
        map_answer = answer[0] if answer else None
        reduce_answer = answer[1] if answer else None
        result.record("map", map_answer, expected)
        if record.features.has_reduce:
            result.record("reduce", reduce_answer, expected)
    return result
