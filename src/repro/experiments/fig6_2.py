"""Figure 6.2: matching accuracy of PStorM versus GBRT.

Four GBRT hyper-parameter settings, as in §6.1.2:

- **GBRT 1** — R gbm defaults: gaussian, 2000 trees, shrinkage 0.005,
  train fraction 50%, 10-fold CV.
- **GBRT 2** — laplace distribution instead of gaussian.
- **GBRT 3** — 10,000 trees, shrinkage 0.001, train fraction 80%.
- **GBRT 4** — train fraction 100% (the deliberately overfit setting).

Tree counts are scaled down by ``iteration_scale`` so the experiment runs
in seconds instead of hours; shrinkage is scaled up by the same factor so
the *total* amount of shrinkage-weighted boosting matches the paper's
settings (a standard equivalence for gradient boosting).
"""

from __future__ import annotations

from ..core.gbrt import GbrtParams
from ..workloads.benchmark import standard_benchmark
from .accuracy import evaluate_gbrt, evaluate_pstorm, train_gbrt_matcher
from .common import ExperimentContext, SuiteRecord, collect_suite
from .result import ExperimentResult

__all__ = ["run", "gbrt_settings"]


def gbrt_settings(iteration_scale: float = 0.05) -> list[tuple[str, GbrtParams]]:
    """The paper's four GBRT settings, iteration-scaled."""
    def scaled(n_trees: int, shrinkage: float, **kwargs) -> GbrtParams:
        trees = max(50, int(n_trees * iteration_scale))
        return GbrtParams(
            n_trees=trees,
            shrinkage=shrinkage * (n_trees / trees),
            **kwargs,
        )

    return [
        ("GBRT 1", scaled(2000, 0.005, distribution="gaussian", train_fraction=0.5, cv_folds=10)),
        ("GBRT 2", scaled(2000, 0.005, distribution="laplace", train_fraction=0.5, cv_folds=10)),
        ("GBRT 3", scaled(10000, 0.001, distribution="laplace", train_fraction=0.8, cv_folds=10)),
        ("GBRT 4", scaled(10000, 0.001, distribution="laplace", train_fraction=1.0, cv_folds=10)),
    ]


def run(
    ctx: ExperimentContext | None = None,
    records: dict[str, SuiteRecord] | None = None,
    seed: int = 0,
    iteration_scale: float = 0.05,
) -> ExperimentResult:
    """Regenerate Figure 6.2."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    if records is None:
        records = collect_suite(ctx, standard_benchmark(), seed=seed)

    matchers = {
        label: train_gbrt_matcher(ctx, records, params, seed=seed)
        for label, params in gbrt_settings(iteration_scale)
    }
    rows = []
    for state in ("SD", "DD"):
        pstorm = evaluate_pstorm(records, state)
        rows.append(
            [
                "PStorM",
                state,
                round(pstorm.map_accuracy, 3),
                round(pstorm.reduce_accuracy, 3),
            ]
        )
        for label, params in gbrt_settings(iteration_scale):
            result = evaluate_gbrt(
                ctx, records, state, params, label, seed=seed,
                matcher=matchers[label],
            )
            rows.append(
                [
                    label,
                    state,
                    round(result.map_accuracy, 3),
                    round(result.reduce_accuracy, 3),
                ]
            )
    return ExperimentResult(
        name="Figure 6.2",
        title="Matching accuracy: PStorM vs GBRT (4 hyper-parameter settings)",
        headers=["approach", "state", "map accuracy", "reduce accuracy"],
        rows=rows,
        notes=(
            "Expected shape: PStorM at least matches the best GBRT setting "
            "in every (state, side) cell; GBRT 4 (overfit) is the strongest "
            "GBRT variant."
        ),
    )
