"""Store warm-up: PStorM versus vanilla Starfish over a submission stream.

The paper's pitch (Ch. 1/3) in one experiment: Starfish's own workflow
(Fig 2.1) tunes a job only after a full instrumented run of *that job* —
every first submission pays full profiling and runs untuned.  PStorM
reuses profiles across jobs, so a submission stream with natural repetition
and similarity gets tuned configurations much sooner and pays only 1-task
samples.  This driver replays one stream under three policies:

- **default**: no tuning at all;
- **starfish**: the Fig 2.1 loop (first run instrumented + untuned,
  later runs tuned with the own profile);
- **pstorm**: the Chapter 3 loop (1-task sample, store match, CBO on a
  hit; instrumented run + store insert on a miss).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pstorm import PStorM
from ..hadoop.config import JobConfiguration
from ..workloads.datasets import random_text_1gb, tpch_dataset, webdocs_dataset
from ..workloads.jobs import (
    bigram_relative_frequency_job,
    cooccurrence_pairs_job,
    fim_item_count_job,
    grep_job,
    inverted_index_job,
    join_job,
    word_count_job,
)
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run", "submission_stream"]


def _job_pool():
    text = random_text_1gb()
    return [
        (word_count_job(), text),
        (cooccurrence_pairs_job(), text),
        (bigram_relative_frequency_job(), text),
        (inverted_index_job(), text),
        (grep_job("w0001"), text),
        (join_job(), tpch_dataset(1)),
        (fim_item_count_job(), webdocs_dataset()),
    ]


def submission_stream(length: int = 21, seed: int = 0) -> list[tuple]:
    """A stream with Zipf-like repetition over the job pool."""
    pool = _job_pool()
    rng = np.random.default_rng(seed)
    stream = []
    for __ in range(length):
        index = int(rng.zipf(1.6)) - 1
        stream.append(pool[index % len(pool)])
    return stream


@dataclass
class _PolicyState:
    total_seconds: float = 0.0
    tuned_submissions: int = 0
    instrumented_runs: int = 0
    profiles: dict[str, object] = field(default_factory=dict)


def run(
    ctx: ExperimentContext | None = None,
    stream_length: int = 21,
    seed: int = 0,
) -> ExperimentResult:
    """Replay one stream under the three policies."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    stream = submission_stream(stream_length, seed)
    cbo = ctx.make_cbo()

    default_state = _PolicyState()
    starfish_state = _PolicyState()
    pstorm_state = _PolicyState()
    pstorm = PStorM(ctx.engine)

    checkpoints = sorted({stream_length // 3, 2 * stream_length // 3, stream_length})
    rows = []

    for position, (job, dataset) in enumerate(stream, start=1):
        run_seed = seed + position
        key = f"{job.name}@{dataset.name}"

        # Policy 1: default configuration, never tuned.
        default_run = ctx.engine.run_job(
            job, dataset, JobConfiguration(), seed=run_seed
        )
        default_state.total_seconds += default_run.runtime_seconds

        # Policy 2: vanilla Starfish (Fig 2.1).
        if key not in starfish_state.profiles:
            profile, execution = ctx.profiler.profile_job(
                job, dataset, seed=run_seed
            )
            starfish_state.profiles[key] = profile
            starfish_state.total_seconds += execution.runtime_seconds
            starfish_state.instrumented_runs += 1
        else:
            profile = starfish_state.profiles[key]
            best = cbo.optimize(profile, data_bytes=dataset.nominal_bytes)
            tuned = ctx.engine.run_job(job, dataset, best.best_config, seed=run_seed)
            starfish_state.total_seconds += tuned.runtime_seconds
            starfish_state.tuned_submissions += 1

        # Policy 3: PStorM (Chapter 3).
        result = pstorm.submit(job, dataset, seed=run_seed)
        pstorm_state.total_seconds += result.total_seconds
        if result.matched:
            pstorm_state.tuned_submissions += 1
        else:
            pstorm_state.instrumented_runs += 1

        if position in checkpoints:
            rows.append(
                [
                    position,
                    round(default_state.total_seconds / 3600, 2),
                    round(starfish_state.total_seconds / 3600, 2),
                    round(pstorm_state.total_seconds / 3600, 2),
                    starfish_state.tuned_submissions,
                    pstorm_state.tuned_submissions,
                    pstorm_state.instrumented_runs,
                ]
            )

    return ExperimentResult(
        name="Adoption",
        title="Store warm-up: cumulative hours under three tuning policies",
        headers=[
            "submissions",
            "default h",
            "starfish h",
            "pstorm h",
            "starfish tuned",
            "pstorm tuned",
            "pstorm misses",
        ],
        rows=rows,
        notes=(
            "Expected shape: PStorM tunes more of the stream than vanilla "
            "Starfish (cross-job matches) and ends with the lowest "
            "cumulative hours; both beat never tuning."
        ),
    )
