"""Figure 4.1: 10% profiling versus 1-task sampling.

(a) Profiling overhead — the wall-clock cost of the sampling run as a
fraction of the job's runtime under the RBO's recommendation with the
profiler off.  (b) Map slots consumed — 10% of the split count versus
exactly one.
"""

from __future__ import annotations

from ..workloads.benchmark import BenchmarkEntry
from ..workloads.datasets import (
    pigmix_dataset,
    teragen_dataset,
    tpch_dataset,
    wikipedia_35gb,
)
from ..workloads.jobs import (
    bigram_relative_frequency_job,
    cooccurrence_pairs_job,
    inverted_index_job,
    join_job,
    pigmix_job,
    sort_job,
    word_count_job,
)
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run", "overhead_entries"]


def overhead_entries() -> list[BenchmarkEntry]:
    """The 35 GB-class jobs the overhead comparison runs on."""
    wiki = wikipedia_35gb()
    return [
        BenchmarkEntry(word_count_job(), wiki, "Text Mining"),
        BenchmarkEntry(inverted_index_job(), wiki, "Text Mining"),
        BenchmarkEntry(bigram_relative_frequency_job(), wiki, "NLP"),
        BenchmarkEntry(cooccurrence_pairs_job(), wiki, "NLP"),
        BenchmarkEntry(sort_job(), teragen_dataset(35), "Many Domains"),
        BenchmarkEntry(join_job(), tpch_dataset(35), "BI"),
        BenchmarkEntry(pigmix_job(3), pigmix_dataset(35), "Pig"),
    ]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Figures 4.1(a) and 4.1(b)."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    rbo = ctx.make_rbo()

    rows = []
    for index, entry in enumerate(overhead_entries()):
        run_seed = seed + index
        # A cheap pilot sample feeds the RBO; the measured sampling runs
        # and the unprofiled baseline all use the RBO's configuration,
        # matching the figure's comparison basis.
        pilot = ctx.sampler.collect(entry.job, entry.dataset, count=1, seed=run_seed)
        rbo_config = rbo.recommend(pilot.profile).config
        one_task = ctx.sampler.collect(
            entry.job, entry.dataset, rbo_config, count=1, seed=run_seed
        )
        ten_percent = ctx.sampler.collect(
            entry.job, entry.dataset, rbo_config, fraction=0.10, seed=run_seed
        )
        baseline = ctx.engine.run_job(
            entry.job, entry.dataset, rbo_config, seed=run_seed
        ).runtime_seconds
        rows.append(
            [
                entry.job.name,
                entry.dataset.num_splits,
                round(ten_percent.overhead_seconds / baseline, 3),
                round(one_task.overhead_seconds / baseline, 3),
                ten_percent.map_slots_consumed,
                one_task.map_slots_consumed,
            ]
        )
    return ExperimentResult(
        name="Figure 4.1",
        title="10% profiling vs 1-task sampling: overhead fraction and map slots",
        headers=[
            "job",
            "splits",
            "10% overhead frac",
            "1-task overhead frac",
            "10% slots",
            "1-task slots",
        ],
        rows=rows,
        notes=(
            "Expected shape: 1-task overhead well below the 10%-profile "
            "overhead; slots ~10% of splits vs exactly 1 (paper: 57 vs 1)."
        ),
    )
