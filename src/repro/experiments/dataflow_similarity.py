"""Generated-job similarity: the §1 Pig/Hive claim, measured.

Chapter 1: "The similarity between MR jobs is likely to be higher if the
jobs are generated from high-level query languages such as Pig Latin or
Hive."  This driver quantifies it: a set of *distinct* dataflow scripts
compiles onto the shared generic operators; after storing the first few
scripts' profiles, every further script is submitted as a brand-new job.
We report the match rate and how often the match came through the strong
static path — versus the same protocol over hand-written jobs, which must
fall back to the lenient cost filter far more often.
"""

from __future__ import annotations

from ..core.features import extract_job_features
from ..core.matcher import ProfileMatcher
from ..core.store import ProfileStore
from ..dataflow import DataflowScript, compile_script
from ..workloads.datasets import pigmix_dataset
from ..workloads.jobs import (
    bigram_relative_frequency_job,
    cooccurrence_pairs_job,
    inverted_index_job,
    pigmix_job,
    word_count_job,
)
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run", "example_scripts"]


def example_scripts() -> list[DataflowScript]:
    """Eight distinct analyses over page_views, as a script author would
    write them (value fields: user, action, timespent, term, revenue,
    links)."""
    return [
        DataflowScript("revenue-by-user")
        .filter(1, "==", 2)
        .project(0, 4)
        .group_by(0, aggregations=[("sum", 1)]),
        DataflowScript("time-by-term")
        .project(3, 2)
        .group_by(0, aggregations=[("sum", 1), ("avg", 1)]),
        DataflowScript("link-popularity")
        .project(0, 5, flatten=1)
        .group_by(1, aggregations=[("count", 0)]),
        DataflowScript("active-users")
        .filter(2, ">", 60)
        .distinct(0),
        DataflowScript("actions-histogram")
        .project(1, 0)
        .group_by(0, aggregations=[("count", 1)]),
        DataflowScript("big-spenders")
        .filter(4, ">", 25.0)
        .project(0, 4)
        .group_by(0, aggregations=[("max", 1), ("count", 1)]),
        DataflowScript("terms-ordered")
        .project(3, 4)
        .order_by(1, descending=True),
        DataflowScript("term-users")
        .project(3, 0)
        .distinct(0, 1),
    ]


def _match_protocol(ctx, jobs_with_datasets, seed):
    """Store the first half's profiles; submit the second half as new."""
    store = ProfileStore()
    half = max(1, len(jobs_with_datasets) // 2)
    for index, (job, dataset) in enumerate(jobs_with_datasets[:half]):
        profile, __ = ctx.profiler.profile_job(job, dataset, seed=seed + index)
        sample = ctx.sampler.collect(job, dataset, count=1, seed=seed + index)
        features = extract_job_features(job, dataset, sample.profile, ctx.engine)
        store.put(profile, features.static, job_id=f"{job.name}@{dataset.name}")

    matcher = ProfileMatcher(store)
    matched = 0
    static_path = 0
    total = 0
    for index, (job, dataset) in enumerate(jobs_with_datasets[half:]):
        sample = ctx.sampler.collect(job, dataset, count=1, seed=seed + 100 + index)
        features = extract_job_features(job, dataset, sample.profile, ctx.engine)
        outcome = matcher.match_job(features)
        total += 1
        if outcome.matched:
            matched += 1
            if outcome.map_match.stage == "static":
                static_path += 1
    return matched, static_path, total


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Compare generated-script jobs with hand-written jobs."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    pages = pigmix_dataset(1)

    generated = [
        (job, pages)
        for script in example_scripts()
        for job in compile_script(script)
    ]
    handwritten = [
        (word_count_job(), pages),
        (inverted_index_job(), pages),
        (bigram_relative_frequency_job(), pages),
        (cooccurrence_pairs_job(), pages),
        (pigmix_job(1), pages),
        (pigmix_job(4), pages),
        (pigmix_job(6), pages),
        (pigmix_job(11), pages),
    ]
    # Hand-written text jobs cannot parse page_views tuples; give them a
    # comparable text corpus instead, keeping the protocol identical.
    from ..workloads.datasets import random_text_1gb

    text = random_text_1gb()
    handwritten = [
        (job, text if job.input_format == "TextInputFormat" else pages)
        for job, __ in handwritten
    ]

    rows = []
    for label, population in (
        ("script-generated", generated),
        ("hand-written", handwritten),
    ):
        matched, static_path, total = _match_protocol(ctx, population, seed)
        rows.append(
            [
                label,
                total,
                round(matched / total, 3) if total else 0.0,
                round(static_path / total, 3) if total else 0.0,
            ]
        )
    return ExperimentResult(
        name="Dataflow similarity",
        title="Match rate for new jobs: generated scripts vs hand-written",
        headers=["population", "new jobs", "match rate", "via static path"],
        rows=rows,
        notes=(
            "Expected shape: script-generated jobs match through the strong "
            "static path far more often — the §1 claim about Pig/Hive "
            "workloads, measured."
        ),
    )
