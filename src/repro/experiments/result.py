"""Experiment result container with the paper-style table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from .common import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"== {self.name}: {self.title} ==", format_table(self.headers, self.rows)]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]
