"""Shared experiment infrastructure.

Every table/figure driver builds on the same pieces: a simulated cluster
with its Starfish stack, the Table 6.1 suite profiled end to end, and
store builders for the three content states of §6 —

- **SD** (Same Data): the store holds every suite profile, including the
  submitted (job, dataset) pair's own; the correct match is that profile.
- **DD** (Different Data): the submitted pair's own profile is removed;
  the correct match is its *twin* (same job, other dataset), when one
  exists.
- **NJ** (New Job): every profile of the submitted job (on any dataset)
  is removed; there is no "correct" stored answer — the measure of
  success is the tuning speedup the composite profile delivers (Fig 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.static_features import StaticFeatures
from ..core.features import JobFeatures, extract_job_features
from ..core.store import ProfileStore
from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.engine import HadoopEngine
from ..hadoop.cluster import ec2_cluster
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.profile import JobProfile
from ..starfish.profiler import StarfishProfiler
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.sampler import Sampler
from ..starfish.whatif import WhatIfEngine
from ..workloads.benchmark import BenchmarkEntry, standard_benchmark

__all__ = [
    "ExperimentContext",
    "SuiteRecord",
    "collect_suite",
    "build_store",
    "twin_of",
    "format_table",
]


@dataclass
class ExperimentContext:
    """A cluster plus the Starfish components every experiment needs."""

    cluster: ClusterSpec
    engine: HadoopEngine
    profiler: StarfishProfiler
    sampler: Sampler
    whatif: WhatIfEngine
    seed: int = 0

    @classmethod
    def create(cls, seed: int = 0) -> "ExperimentContext":
        cluster = ec2_cluster()
        engine = HadoopEngine(cluster)
        profiler = StarfishProfiler(engine)
        return cls(
            cluster=cluster,
            engine=engine,
            profiler=profiler,
            sampler=Sampler(profiler),
            whatif=WhatIfEngine(cluster),
            seed=seed,
        )

    def make_cbo(self, seed: int | None = None) -> CostBasedOptimizer:
        return CostBasedOptimizer(self.whatif, seed=self.seed if seed is None else seed)

    def make_rbo(self) -> RuleBasedOptimizer:
        return RuleBasedOptimizer(self.cluster)


@dataclass
class SuiteRecord:
    """Everything collected for one benchmark (job, dataset) pair."""

    entry: BenchmarkEntry
    full_profile: JobProfile
    sample_profile: JobProfile
    features: JobFeatures

    @property
    def key(self) -> str:
        return self.entry.key

    @property
    def job_name(self) -> str:
        return self.entry.job.name

    @property
    def static(self) -> StaticFeatures:
        return self.features.static


def collect_suite(
    ctx: ExperimentContext,
    entries: list[BenchmarkEntry] | None = None,
    seed: int = 0,
) -> dict[str, SuiteRecord]:
    """Profile the whole suite: full profile + 1-task sample + features."""
    if entries is None:
        entries = standard_benchmark()
    records: dict[str, SuiteRecord] = {}
    for index, entry in enumerate(entries):
        run_seed = seed + index
        full_profile, __ = ctx.profiler.profile_job(
            entry.job, entry.dataset, seed=run_seed
        )
        sample = ctx.sampler.collect(
            entry.job, entry.dataset, count=1, seed=run_seed + 1
        )
        features = extract_job_features(
            entry.job, entry.dataset, sample.profile, ctx.engine
        )
        records[entry.key] = SuiteRecord(
            entry=entry,
            full_profile=full_profile,
            sample_profile=sample.profile,
            features=features,
        )
    return records


def build_store(
    records: dict[str, SuiteRecord],
    exclude_keys: set[str] | None = None,
    exclude_jobs: set[str] | None = None,
) -> ProfileStore:
    """A fresh profile store holding the suite, minus exclusions.

    Args:
        exclude_keys: exact (job, dataset) keys to omit (the DD state).
        exclude_jobs: job names to omit on *all* datasets (the NJ state).
    """
    store = ProfileStore()
    for key, record in records.items():
        if exclude_keys and key in exclude_keys:
            continue
        if exclude_jobs and record.job_name in exclude_jobs:
            continue
        store.put(record.full_profile, record.static, job_id=key)
    return store


def twin_of(records: dict[str, SuiteRecord], key: str) -> str | None:
    """The twin of a (job, dataset) key: same job, other dataset."""
    job_name = records[key].job_name
    twins = [
        other
        for other, record in records.items()
        if other != key and record.job_name == job_name
    ]
    if not twins:
        return None
    # FIM-style chains have one dataset; CF jobs have exactly one twin.
    return sorted(twins)[0]


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Monospace table rendering for experiment output."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
