"""Shared experiment infrastructure.

Every table/figure driver builds on the same pieces: a simulated cluster
with its Starfish stack, the Table 6.1 suite profiled end to end, and
store builders for the three content states of §6 —

- **SD** (Same Data): the store holds every suite profile, including the
  submitted (job, dataset) pair's own; the correct match is that profile.
- **DD** (Different Data): the submitted pair's own profile is removed;
  the correct match is its *twin* (same job, other dataset), when one
  exists.
- **NJ** (New Job): every profile of the submitted job (on any dataset)
  is removed; there is no "correct" stored answer — the measure of
  success is the tuning speedup the composite profile delivers (Fig 6.3).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TypeVar

from ..analysis.static_features import StaticFeatures
from ..core.features import JobFeatures, extract_job_features
from ..core.maintenance import EvictionPolicy, MaintainedStore
from ..core.resilient import ResilientProfileStore
from ..core.store import ProfileStore
from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.engine import HadoopEngine
from ..hadoop.cluster import ec2_cluster
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.profile import JobProfile
from ..starfish.profiler import StarfishProfiler
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.sampler import Sampler
from ..starfish.whatif import WhatIfEngine
from ..observability import LATENCY_BUCKETS, MetricsRegistry, get_registry
from ..workloads.benchmark import BenchmarkEntry, standard_benchmark

__all__ = [
    "CellExecutionError",
    "ExperimentContext",
    "SuiteRecord",
    "collect_suite",
    "build_store",
    "parallel_cells",
    "twin_of",
    "format_table",
]

_T = TypeVar("_T")


class CellExecutionError(RuntimeError):
    """One experiment cell failed; carries the cell key for diagnosis."""

    def __init__(self, key: str, cause: BaseException) -> None:
        super().__init__(
            f"experiment cell {key!r} failed: {type(cause).__name__}: {cause}"
        )
        self.key = key
        self.cause = cause


def parallel_cells(
    tasks: Mapping[str, Callable[[], _T]],
    workers: int = 1,
    registry: MetricsRegistry | None = None,
) -> dict[str, _T]:
    """Run independent experiment cells, optionally fanned over threads.

    Args:
        tasks: one zero-argument callable per cell, keyed by cell key
            (e.g. ``"word-count@wikipedia-35gb"``).  Cells must be
            independent of each other.
        workers: thread count; ``<= 1`` runs inline with no executor.
        registry: metrics sink; None falls back to the module default.

    Returns:
        ``{key: result}`` merged **deterministically by sorted cell key**,
        regardless of worker count or completion order — so a suite
        collected with ``--workers 4`` is indistinguishable from one
        collected sequentially.

    Raises:
        CellExecutionError: a cell raised; the error names the cell and
            chains the original exception, and remaining unstarted cells
            are cancelled rather than left to hang.
    """
    registry = get_registry(registry)
    worker_seconds: dict[int, float] = {}
    accounting = threading.Lock()

    def run_cell(key: str, fn: Callable[[], _T]) -> _T:
        started = time.perf_counter()
        try:
            result = fn()
        except BaseException as exc:
            registry.counter(
                "experiment_cell_failures_total", "experiment cells that raised"
            ).inc()
            raise CellExecutionError(key, exc) from exc
        finally:
            elapsed = time.perf_counter() - started
            registry.counter(
                "experiment_cells_total", "experiment cells executed"
            ).inc()
            registry.histogram(
                "experiment_cell_seconds",
                "wall time of one experiment cell",
                buckets=LATENCY_BUCKETS,
            ).observe(elapsed)
            with accounting:
                ident = threading.get_ident()
                worker_seconds[ident] = worker_seconds.get(ident, 0.0) + elapsed
        return result

    ordered = sorted(tasks)
    results: dict[str, _T] = {}
    try:
        if workers <= 1:
            for key in ordered:
                results[key] = run_cell(key, tasks[key])
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, max(1, len(ordered))),
                thread_name_prefix="experiment-cell",
            ) as pool:
                futures = {
                    key: pool.submit(run_cell, key, tasks[key]) for key in ordered
                }
                try:
                    for key in ordered:
                        results[key] = futures[key].result()
                except BaseException:
                    for future in futures.values():
                        future.cancel()
                    raise
    finally:
        for seconds in worker_seconds.values():
            registry.histogram(
                "experiment_worker_seconds",
                "busy wall time per worker thread over one parallel_cells call",
                buckets=LATENCY_BUCKETS,
            ).observe(seconds)
    return results


@dataclass
class ExperimentContext:
    """A cluster plus the Starfish components every experiment needs."""

    cluster: ClusterSpec
    engine: HadoopEngine
    profiler: StarfishProfiler
    sampler: Sampler
    whatif: WhatIfEngine
    seed: int = 0
    #: Worker threads used by drivers that fan out independent cells
    #: (``collect_suite``, ``table6_1``); 1 means fully sequential.
    workers: int = 1

    @classmethod
    def create(cls, seed: int = 0, workers: int = 1) -> "ExperimentContext":
        cluster = ec2_cluster()
        engine = HadoopEngine(cluster, measurement_workers=workers)
        profiler = StarfishProfiler(engine)
        return cls(
            cluster=cluster,
            engine=engine,
            profiler=profiler,
            sampler=Sampler(profiler),
            whatif=WhatIfEngine(cluster),
            seed=seed,
            workers=max(1, workers),
        )

    def make_cbo(self, seed: int | None = None) -> CostBasedOptimizer:
        return CostBasedOptimizer(self.whatif, seed=self.seed if seed is None else seed)

    def make_rbo(self) -> RuleBasedOptimizer:
        return RuleBasedOptimizer(self.cluster)


@dataclass
class SuiteRecord:
    """Everything collected for one benchmark (job, dataset) pair."""

    entry: BenchmarkEntry
    full_profile: JobProfile
    sample_profile: JobProfile
    features: JobFeatures

    @property
    def key(self) -> str:
        return self.entry.key

    @property
    def job_name(self) -> str:
        return self.entry.job.name

    @property
    def static(self) -> StaticFeatures:
        return self.features.static


def collect_suite(
    ctx: ExperimentContext,
    entries: list[BenchmarkEntry] | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> dict[str, SuiteRecord]:
    """Profile the whole suite: full profile + 1-task sample + features.

    Each (job, dataset) entry is an independent cell — its seeds derive
    from the entry's position, never from execution order — so cells fan
    out over ``workers`` threads (default: ``ctx.workers``) and the
    returned mapping is identical for any worker count.
    """
    if entries is None:
        entries = standard_benchmark()
    if workers is None:
        workers = ctx.workers

    def make_task(index: int, entry: BenchmarkEntry) -> Callable[[], SuiteRecord]:
        run_seed = seed + index

        def task() -> SuiteRecord:
            full_profile, __ = ctx.profiler.profile_job(
                entry.job, entry.dataset, seed=run_seed
            )
            sample = ctx.sampler.collect(
                entry.job, entry.dataset, count=1, seed=run_seed + 1
            )
            features = extract_job_features(
                entry.job, entry.dataset, sample.profile, ctx.engine
            )
            return SuiteRecord(
                entry=entry,
                full_profile=full_profile,
                sample_profile=sample.profile,
                features=features,
            )

        return task

    tasks = {
        entry.key: make_task(index, entry) for index, entry in enumerate(entries)
    }
    results = parallel_cells(tasks, workers=workers)
    return {entry.key: results[entry.key] for entry in entries}


def build_store(
    records: dict[str, SuiteRecord],
    exclude_keys: set[str] | None = None,
    exclude_jobs: set[str] | None = None,
    capacity: int | None = None,
    eviction: EvictionPolicy | None = None,
) -> ResilientProfileStore:
    """A fresh profile store holding the suite, minus exclusions.

    The returned store is wrapped in the resilient client (a passthrough
    when no fault injector is active), so whole experiment suites keep
    running under ``--chaos``: prepopulation writes and every matcher
    probe retry transient faults instead of aborting the driver.

    Args:
        exclude_keys: exact (job, dataset) keys to omit (the DD state).
        exclude_jobs: job names to omit on *all* datasets (the NJ state).
        capacity: when set, bound the store to this many profiles via a
            :class:`~repro.core.maintenance.MaintainedStore` *inside* the
            resilient client, so eviction passes are retried as one
            logical operation — the shape the serving path uses.
        eviction: eviction policy for a capacity-bound store (default
            LRU, refreshed by matcher hits).
    """
    inner: Any = ProfileStore()
    if capacity is not None:
        if eviction is not None:
            inner = MaintainedStore(inner, capacity=capacity, policy=eviction)
        else:
            inner = MaintainedStore(inner, capacity=capacity)
    store = ResilientProfileStore(inner)
    for key, record in records.items():
        if exclude_keys and key in exclude_keys:
            continue
        if exclude_jobs and record.job_name in exclude_jobs:
            continue
        store.put(record.full_profile, record.static, job_id=key)
    return store


def twin_of(records: dict[str, SuiteRecord], key: str) -> str | None:
    """The twin of a (job, dataset) key: same job, other dataset."""
    job_name = records[key].job_name
    twins = [
        other
        for other, record in records.items()
        if other != key and record.job_name == job_name
    ]
    if not twins:
        return None
    # FIM-style chains have one dataset; CF jobs have exactly one twin.
    return sorted(twins)[0]


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Monospace table rendering for experiment output."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
