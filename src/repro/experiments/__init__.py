"""Experiment drivers: one module per table/figure, plus ablations.

Every driver exposes ``run(...) -> ExperimentResult``; ``run_all`` chains
them and returns the formatted report the benchmarks print.
"""

from . import (
    ablations,
    adoption,
    dataflow_similarity,
    fig1_3,
    fig4_1,
    fig4_3,
    fig4_5,
    fig4_6,
    fig6_1,
    fig6_2,
    fig6_3,
    table6_1,
)
from .accuracy import (
    AccuracyResult,
    evaluate_gbrt,
    evaluate_nn_baseline,
    evaluate_pstorm,
)
from .common import (
    ExperimentContext,
    SuiteRecord,
    build_store,
    collect_suite,
    twin_of,
)
from .result import ExperimentResult

__all__ = [
    "ablations",
    "adoption",
    "dataflow_similarity",
    "fig1_3",
    "fig4_1",
    "fig4_3",
    "fig4_5",
    "fig4_6",
    "fig6_1",
    "fig6_2",
    "fig6_3",
    "table6_1",
    "AccuracyResult",
    "evaluate_gbrt",
    "evaluate_nn_baseline",
    "evaluate_pstorm",
    "ExperimentContext",
    "SuiteRecord",
    "build_store",
    "collect_suite",
    "twin_of",
    "ExperimentResult",
    "run_all",
]


def run_all(seed: int = 0) -> list[ExperimentResult]:
    """Run every experiment once, sharing the context and suite profiles."""
    ctx = ExperimentContext.create(seed)
    records = collect_suite(ctx, seed=seed)
    results = [
        table6_1.run(ctx, seed=seed),
        fig1_3.run(ctx, seed=seed),
        fig4_1.run(ctx, seed=seed),
        fig4_3.run(ctx, seed=seed),
        fig4_5.run(ctx, seed=seed),
        fig4_6.run(ctx, seed=seed),
        fig6_1.run(ctx, records, seed=seed),
        fig6_2.run(ctx, records, seed=seed),
        fig6_3.run(ctx, records, seed=seed),
        ablations.run_pushdown(ctx, records, seed=seed),
        ablations.run_store_models(ctx, records, seed=seed),
        ablations.run_param_features(ctx, seed=seed),
        ablations.run_filter_order(ctx, records, seed=seed),
        ablations.run_threshold_sensitivity(ctx, records, seed=seed),
        ablations.run_cluster_transfer(ctx, seed=seed),
        ablations.run_gbrt_weights(ctx, records, seed=seed),
        ablations.run_store_scalability(ctx, records, seed=seed),
        ablations.run_cfg_cost_correlation(ctx, records, seed=seed),
        adoption.run(ctx, seed=seed),
        dataflow_similarity.run(ctx, seed=seed),
    ]
    return results
