"""Figure 4.3: map-phase times of Word Count versus Word Co-occurrence.

The CFG-feature rationale: the two map functions differ in control flow
(one loop vs nested loops with a condition), so their map-phase (user
function) times differ markedly on the same data, even though both jobs
tokenize the same text.
"""

from __future__ import annotations

from ..hadoop.config import JobConfiguration
from ..hadoop.tasks import MAP_PHASES
from ..workloads.datasets import wikipedia_35gb
from ..workloads.jobs import cooccurrence_pairs_job, word_count_job
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 4.3: per-task average map phase times (seconds)."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    wiki = wikipedia_35gb()
    config = JobConfiguration()

    rows = []
    for job in (word_count_job(), cooccurrence_pairs_job()):
        execution = ctx.engine.run_job(job, wiki, config, seed=seed)
        totals = execution.map_phase_totals()
        count = max(1, execution.num_map_tasks)
        row = [job.name] + [round(totals[p] / count, 2) for p in MAP_PHASES]
        rows.append(row)

    return ExperimentResult(
        name="Figure 4.3",
        title="Map-phase times: word count vs word co-occurrence (avg s/task)",
        headers=["job"] + list(MAP_PHASES),
        rows=rows,
        notes=(
            "Expected shape: the co-occurrence MAP (and COLLECT/SPILL) phases "
            "dwarf word count's — the CPU-cost difference the CFG feature "
            "captures statically."
        ),
    )
