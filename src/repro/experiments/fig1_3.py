"""Figure 1.3: speedups of the word co-occurrence pairs job under
different tuning approaches.

Three bars: the RBO's recommendation; the Starfish CBO fed the job's own
complete profile; and the CBO fed the *bigram relative frequency* job's
profile instead.  The paper's shape: profile reuse lands within a whisker
of own-profile tuning and roughly doubles the RBO's speedup.
"""

from __future__ import annotations

from ..hadoop.config import JobConfiguration
from ..workloads.datasets import wikipedia_35gb
from ..workloads.jobs import bigram_relative_frequency_job, cooccurrence_pairs_job
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1.3."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    wiki = wikipedia_35gb()
    cooc = cooccurrence_pairs_job()
    bigram = bigram_relative_frequency_job()

    default_exec = ctx.engine.run_job(cooc, wiki, JobConfiguration(), seed=seed)
    baseline = default_exec.runtime_seconds

    # RBO over the 1-task sample profile.
    sample = ctx.sampler.collect(cooc, wiki, count=1, seed=seed)
    rbo_config = ctx.make_rbo().recommend(sample.profile).config
    rbo_runtime = ctx.engine.run_job(cooc, wiki, rbo_config, seed=seed).runtime_seconds

    # CBO with the job's own complete profile.
    own_profile, __ = ctx.profiler.profile_job(cooc, wiki, seed=seed)
    own_config = ctx.make_cbo().optimize(own_profile).best_config
    own_runtime = ctx.engine.run_job(cooc, wiki, own_config, seed=seed).runtime_seconds

    # CBO with the bigram relative frequency job's profile.
    donor_profile, __ = ctx.profiler.profile_job(bigram, wiki, seed=seed)
    donor_config = ctx.make_cbo().optimize(
        donor_profile, data_bytes=wiki.nominal_bytes
    ).best_config
    donor_runtime = ctx.engine.run_job(cooc, wiki, donor_config, seed=seed).runtime_seconds

    rows = [
        ["RBO", round(baseline / rbo_runtime, 2)],
        ["CBO (own profile)", round(baseline / own_runtime, 2)],
        ["CBO (bigram rel. freq. profile)", round(baseline / donor_runtime, 2)],
    ]
    return ExperimentResult(
        name="Figure 1.3",
        title="Speedups of word co-occurrence pairs under different tuning approaches",
        headers=["approach", "speedup vs default"],
        rows=rows,
        notes=(
            f"default runtime: {baseline / 60:.1f} min. Expected shape: "
            "reused profile ≈ own profile, ≈2x the RBO."
        ),
    )
