"""Figure 4.6: shuffle times of word co-occurrence across dataset sizes.

The tie-break rationale: the same job on different input sizes shuffles
very different volumes per reducer, so its reduce-side profiles differ —
hence the matcher prefers the stored profile whose input size is closest
to the submission's.
"""

from __future__ import annotations

from ..hadoop.config import JobConfiguration
from ..workloads.datasets import random_text_1gb, wikipedia_35gb
from ..workloads.jobs import cooccurrence_pairs_job
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 4.6: per-reducer shuffle times by dataset size."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    job = cooccurrence_pairs_job()
    config = JobConfiguration()

    rows = []
    for dataset in (random_text_1gb(), wikipedia_35gb()):
        execution = ctx.engine.run_job(job, dataset, config, seed=seed)
        shuffle = execution.reduce_phase_totals()["SHUFFLE"]
        reduces = max(1, execution.num_reduce_tasks)
        shuffle_bytes = sum(t.shuffle_bytes for t in execution.reduce_tasks)
        rows.append(
            [
                dataset.name,
                round(dataset.nominal_bytes / (1 << 30), 1),
                round(shuffle / reduces, 1),
                round(shuffle_bytes / (1 << 30), 2),
            ]
        )
    return ExperimentResult(
        name="Figure 4.6",
        title="Shuffle times of word co-occurrence on different data sets",
        headers=["dataset", "input GB", "shuffle s/reducer", "shuffled GB"],
        rows=rows,
        notes="Expected shape: shuffle time grows with the dataset size.",
    )
