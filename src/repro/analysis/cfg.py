"""Control flow graphs in the paper's normalized grammar.

§4.1.3 describes CFGs whose vertices are *branching statements or blocks of
sequentially executed statements* and whose edges are gotos, following the
grammar ``CFG -> Stmt; Stmt -> NormalStmt Stmt | BranchStmt (Stmt, Stmt) |
End``.  :class:`ControlFlowGraph` is that normalized form: after collapsing
straight-line chains, every node is either a NORMAL node with one successor,
a BRANCH node with two ordered successors, or an EXIT node — which makes the
conservative synchronized traversal of :mod:`repro.analysis.cfg_match`
well-defined, and makes a ``for``-loop and an equivalent ``while``-loop
compile to the same graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .bytecode import basic_blocks

__all__ = ["ControlFlowGraph", "NodeKind"]


class NodeKind:
    """Node kinds of the normalized CFG grammar."""

    NORMAL = "normal"
    BRANCH = "branch"
    EXIT = "exit"


@dataclass(frozen=True)
class ControlFlowGraph:
    """A normalized CFG.

    Attributes:
        entry: id of the entry node.
        nodes: node id -> kind (one of :class:`NodeKind`).
        edges: node id -> ordered successor ids (0 for EXIT, 1 for NORMAL,
            2 for BRANCH with fall-through first).
    """

    entry: int
    nodes: Mapping[int, str]
    edges: Mapping[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        for node, kind in self.nodes.items():
            degree = len(self.edges.get(node, ()))
            if kind == NodeKind.EXIT and degree != 0:
                raise ValueError(f"exit node {node} has successors")
            if kind == NodeKind.NORMAL and degree != 1:
                raise ValueError(f"normal node {node} has {degree} successors")
            if kind == NodeKind.BRANCH and degree != 2:
                raise ValueError(f"branch node {node} has {degree} successors")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_branches(self) -> int:
        return sum(1 for kind in self.nodes.values() if kind == NodeKind.BRANCH)

    @property
    def num_loops(self) -> int:
        """Back edges under a DFS from the entry (loop count)."""
        back_edges = 0
        visited: set[int] = set()
        on_stack: set[int] = set()

        def visit(node: int) -> None:
            nonlocal back_edges
            visited.add(node)
            on_stack.add(node)
            for successor in self.edges.get(node, ()):
                if successor in on_stack:
                    back_edges += 1
                elif successor not in visited:
                    visit(successor)
            on_stack.discard(node)

        visit(self.entry)
        return back_edges

    def signature(self) -> str:
        """Canonical string over a BFS: kinds in visit order plus the
        pattern of revisits.  Isomorphic normalized CFGs share signatures."""
        order: dict[int, int] = {}
        queue = [self.entry]
        tokens: list[str] = []
        while queue:
            node = queue.pop(0)
            if node in order:
                continue
            order[node] = len(order)
            kind = self.nodes[node]
            refs = []
            for successor in self.edges.get(node, ()):
                if successor in order:
                    refs.append(f"^{order[successor]}")
                else:
                    refs.append("*")
                    queue.append(successor)
            tokens.append(f"{kind[0]}({','.join(refs)})")
        return ";".join(tokens)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serializable form, for storage in the profile store."""
        return {
            "entry": self.entry,
            "nodes": {str(k): v for k, v in self.nodes.items()},
            "edges": {str(k): list(v) for k, v in self.edges.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ControlFlowGraph":
        return cls(
            entry=int(payload["entry"]),
            nodes={int(k): v for k, v in payload["nodes"].items()},
            edges={int(k): tuple(v) for k, v in payload["edges"].items()},
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_callable(cls, fn: Callable) -> "ControlFlowGraph":
        """Extract and normalize the CFG of a Python callable."""
        blocks = basic_blocks(fn)
        if not blocks:
            return cls(entry=0, nodes={0: NodeKind.EXIT}, edges={0: ()})

        entry = min(blocks)
        nodes: dict[int, str] = {}
        edges: dict[int, tuple[int, ...]] = {}
        for offset, block in blocks.items():
            successors = tuple(block.successors)
            if not successors:
                nodes[offset] = NodeKind.EXIT
            elif block.is_branch and len(successors) == 2:
                nodes[offset] = NodeKind.BRANCH
            else:
                # Multi-successor non-branch cannot occur by construction;
                # single successor is a normal node.
                nodes[offset] = NodeKind.NORMAL
                successors = successors[:1]
            edges[offset] = successors

        nodes, edges, entry = _collapse_chains(nodes, edges, entry)
        nodes, edges, entry = _prune_unreachable(nodes, edges, entry)
        nodes, edges, entry = _renumber(nodes, edges, entry)
        return cls(entry=entry, nodes=nodes, edges=edges)


def _collapse_chains(
    nodes: dict[int, str],
    edges: dict[int, tuple[int, ...]],
    entry: int,
) -> tuple[dict[int, str], dict[int, tuple[int, ...]], int]:
    """Merge NORMAL->NORMAL/EXIT chains so graphs reflect shape, not
    instruction-count accidents of the compiler."""
    predecessors: dict[int, list[int]] = {n: [] for n in nodes}
    for node, successors in edges.items():
        for successor in successors:
            predecessors[successor].append(node)

    merged: set[int] = set()
    for node in sorted(nodes):
        if node in merged or nodes[node] != NodeKind.NORMAL:
            continue
        successor = edges[node][0]
        # Merge while the unique successor has this node as sole predecessor
        # and is itself NORMAL or EXIT (absorbing the exit keeps one node).
        while (
            successor != node
            and len(predecessors[successor]) == 1
            and nodes[successor] in (NodeKind.NORMAL, NodeKind.EXIT)
        ):
            merged.add(successor)
            nodes[node] = nodes[successor]
            edges[node] = edges[successor]
            for nxt in edges[node]:
                predecessors[nxt] = [
                    node if p == successor else p for p in predecessors[nxt]
                ]
            if nodes[node] == NodeKind.EXIT:
                break
            successor = edges[node][0]
    for node in merged:
        nodes.pop(node, None)
        edges.pop(node, None)
    return nodes, edges, entry


def _prune_unreachable(
    nodes: dict[int, str],
    edges: dict[int, tuple[int, ...]],
    entry: int,
) -> tuple[dict[int, str], dict[int, tuple[int, ...]], int]:
    reachable: set[int] = set()
    stack = [entry]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(edges.get(node, ()))
    nodes = {n: k for n, k in nodes.items() if n in reachable}
    edges = {n: s for n, s in edges.items() if n in reachable}
    return nodes, edges, entry


def _renumber(
    nodes: dict[int, str],
    edges: dict[int, tuple[int, ...]],
    entry: int,
) -> tuple[dict[int, str], dict[int, tuple[int, ...]], int]:
    """Relabel nodes 0..n-1 in BFS order from the entry."""
    mapping: dict[int, int] = {}
    queue = [entry]
    while queue:
        node = queue.pop(0)
        if node in mapping:
            continue
        mapping[node] = len(mapping)
        queue.extend(edges.get(node, ()))
    new_nodes = {mapping[n]: k for n, k in nodes.items()}
    new_edges = {
        mapping[n]: tuple(mapping[s] for s in successors)
        for n, successors in edges.items()
    }
    return new_nodes, new_edges, mapping[entry]
