"""Static MR job features (Table 4.3).

The thirteen static features describe the customizable parts of the MR
framework: formatter/mapper/combiner/reducer class names, key/value types
on the map input, map output and reduce output boundaries, and the CFGs of
the map and reduce functions.  Class names and CFGs come from the job's
code; the key/value *types* are observed from the records that flow through
a micro-execution (our stand-in for reading the generic type parameters off
the compiled class, which Python callables do not carry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..hadoop.job import MapReduceJob
from ..hadoop.records import writable_type_name
from .cfg import ControlFlowGraph

__all__ = ["StaticFeatures", "STATIC_FEATURE_NAMES", "extract_static_features"]

#: Feature names in Table 4.3 order.
STATIC_FEATURE_NAMES: tuple[str, ...] = (
    "IN_FORMATTER",
    "MAPPER",
    "MAP_IN_KEY",
    "MAP_IN_VAL",
    "MAP_CFG",
    "MAP_OUT_KEY",
    "MAP_OUT_VAL",
    "COMBINER",
    "REDUCER",
    "RED_OUT_KEY",
    "RED_OUT_VAL",
    "RED_CFG",
    "OUT_FORMATTER",
)

_UNKNOWN = "UNKNOWN"


def _observed_types(pairs: Sequence[tuple[Any, Any]]) -> tuple[str, str]:
    if not pairs:
        return _UNKNOWN, _UNKNOWN
    key, value = pairs[0]
    return writable_type_name(key), writable_type_name(value)


@dataclass(frozen=True)
class StaticFeatures:
    """The static feature vector of one MR job.

    The categorical features live in :attr:`categorical`; the two CFG
    features are kept separately because they use the synchronized-walk
    similarity rather than equality inside a Jaccard index.
    """

    categorical: Mapping[str, str]
    map_cfg: ControlFlowGraph
    reduce_cfg: ControlFlowGraph | None

    def __post_init__(self) -> None:
        expected = set(STATIC_FEATURE_NAMES) - {"MAP_CFG", "RED_CFG"}
        missing = expected - set(self.categorical)
        if missing:
            raise ValueError(f"missing static features: {sorted(missing)}")

    def _extension_features(self) -> dict[str, str]:
        """Optional extension features (``PARAM_*`` from §7.2.1,
        ``CALLGRAPH_*`` from §7.2.2) present in the categorical map."""
        return {
            name: value
            for name, value in self.categorical.items()
            if name.startswith(("PARAM_", "CALLGRAPH_"))
        }

    def map_side(self) -> dict[str, str]:
        """Categorical features relevant to map-profile matching."""
        names = (
            "IN_FORMATTER", "MAPPER", "MAP_IN_KEY", "MAP_IN_VAL",
            "MAP_OUT_KEY", "MAP_OUT_VAL", "COMBINER",
        )
        side = {name: self.categorical[name] for name in names}
        side.update(self._extension_features())
        return side

    def reduce_side(self) -> dict[str, str]:
        """Categorical features relevant to reduce-profile matching."""
        names = (
            "MAP_OUT_KEY", "MAP_OUT_VAL", "COMBINER", "REDUCER",
            "RED_OUT_KEY", "RED_OUT_VAL", "OUT_FORMATTER",
        )
        side = {name: self.categorical[name] for name in names}
        side.update(self._extension_features())
        return side

    def to_dict(self) -> dict[str, Any]:
        """Serializable form for the profile store."""
        payload: dict[str, Any] = dict(self.categorical)
        payload["MAP_CFG"] = self.map_cfg.to_dict()
        payload["RED_CFG"] = self.reduce_cfg.to_dict() if self.reduce_cfg else None
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StaticFeatures":
        # Keep every categorical column, including extension features
        # (PARAM_*/CALLGRAPH_*) that §7.2 matchers store alongside the
        # Table 4.3 names.
        categorical = {
            name: value
            for name, value in payload.items()
            if name not in ("MAP_CFG", "RED_CFG")
        }
        reduce_cfg = payload.get("RED_CFG")
        return cls(
            categorical=categorical,
            map_cfg=ControlFlowGraph.from_dict(payload["MAP_CFG"]),
            reduce_cfg=(
                ControlFlowGraph.from_dict(reduce_cfg) if reduce_cfg else None
            ),
        )


def extract_static_features(
    job: MapReduceJob,
    input_pairs: Sequence[tuple[Any, Any]] = (),
    intermediate_pairs: Sequence[tuple[Any, Any]] = (),
    output_pairs: Sequence[tuple[Any, Any]] = (),
) -> StaticFeatures:
    """Extract Table 4.3's features from a job and observed record streams.

    Args:
        job: the submitted MR job.
        input_pairs: example map input records (for MAP_IN_KEY/VAL).
        intermediate_pairs: example map output records (MAP_OUT_KEY/VAL).
        output_pairs: example reduce output records (RED_OUT_KEY/VAL).
    """
    map_in_key, map_in_val = _observed_types(input_pairs)
    map_out_key, map_out_val = _observed_types(intermediate_pairs)
    red_out_key, red_out_val = _observed_types(output_pairs)

    categorical = {
        "IN_FORMATTER": job.input_format,
        "MAPPER": job.mapper_class,
        "MAP_IN_KEY": map_in_key,
        "MAP_IN_VAL": map_in_val,
        "MAP_OUT_KEY": map_out_key,
        "MAP_OUT_VAL": map_out_val,
        "COMBINER": job.combiner_class,
        "REDUCER": job.reducer_class,
        "RED_OUT_KEY": red_out_key,
        "RED_OUT_VAL": red_out_val,
        "OUT_FORMATTER": job.output_format,
    }
    map_cfg = ControlFlowGraph.from_callable(job.mapper)
    reduce_cfg = (
        ControlFlowGraph.from_callable(job.reducer) if job.reducer else None
    )
    return StaticFeatures(
        categorical=categorical, map_cfg=map_cfg, reduce_cfg=reduce_cfg
    )
