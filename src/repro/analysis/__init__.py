"""Static code analysis substrate: CFG extraction and static features.

The Python stand-in for the paper's use of the Soot framework over Java
byte code (§4.1.2-4.1.3): basic blocks from CPython byte code, normalized
control flow graphs, the conservative synchronized-BFS matcher, and
Table 4.3 static feature extraction.
"""

from .bytecode import BasicBlock, basic_blocks
from .cfg import ControlFlowGraph, NodeKind
from .cfg_match import cfg_match, cfg_similarity
from .static_features import (
    STATIC_FEATURE_NAMES,
    StaticFeatures,
    extract_static_features,
)

__all__ = [
    "BasicBlock",
    "basic_blocks",
    "ControlFlowGraph",
    "NodeKind",
    "cfg_match",
    "cfg_similarity",
    "STATIC_FEATURE_NAMES",
    "StaticFeatures",
    "extract_static_features",
]
