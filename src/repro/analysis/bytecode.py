"""Basic-block extraction from CPython byte code.

The paper extracts control flow graphs from the *Java byte code* of map and
reduce functions using the Soot framework — crucially operating on compiled
code, treating the function as a black box.  Our map/reduce functions are
Python callables, so CPython byte code plays the role of Java byte code:
:func:`basic_blocks` disassembles a code object (via :mod:`dis`) and
partitions it into basic blocks with fall-through and jump edges.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["BasicBlock", "basic_blocks"]

#: Unconditional jump opnames across CPython 3.10-3.13.
_UNCONDITIONAL_JUMPS = {
    "JUMP_FORWARD",
    "JUMP_BACKWARD",
    "JUMP_BACKWARD_NO_INTERRUPT",
    "JUMP_ABSOLUTE",
}
#: Opnames that terminate a block without any successor.
_TERMINATORS = {
    "RETURN_VALUE",
    "RETURN_CONST",
    "RAISE_VARARGS",
    "RERAISE",
}


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        offset: byte-code offset of the first instruction (block id).
        instructions: the block's instruction opnames, in order.
        successors: offsets of successor blocks; for a conditional branch
            the fall-through successor comes first, then the jump target.
        is_branch: True when the block ends in a conditional jump.
    """

    offset: int
    instructions: list[str] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    is_branch: bool = False


def _is_jump(instruction: dis.Instruction) -> bool:
    return instruction.opcode in dis.hasjrel or instruction.opcode in dis.hasjabs


def _jump_target(instruction: dis.Instruction) -> int:
    target = instruction.argval
    if not isinstance(target, int):
        raise ValueError(f"jump without integer target: {instruction.opname}")
    return target


def basic_blocks(fn: Callable) -> dict[int, BasicBlock]:
    """Partition a callable's byte code into basic blocks.

    Exception-handler edges are deliberately ignored: the paper's CFGs
    capture the normal control flow of map/reduce logic, and handler edges
    would be matched conservatively anyway.

    Returns:
        Mapping from block offset to :class:`BasicBlock`, including an
        entry block at the lowest offset.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        raise TypeError(f"{fn!r} has no byte code (not a pure-Python callable)")

    instructions = list(dis.get_instructions(code))
    if not instructions:
        return {}

    # Pass 1: find block leaders.
    leaders: set[int] = {instructions[0].offset}
    for index, instruction in enumerate(instructions):
        if _is_jump(instruction):
            leaders.add(_jump_target(instruction))
            if index + 1 < len(instructions):
                leaders.add(instructions[index + 1].offset)
        elif instruction.opname in _TERMINATORS:
            if index + 1 < len(instructions):
                leaders.add(instructions[index + 1].offset)
        elif getattr(instruction, "is_jump_target", False):
            leaders.add(instruction.offset)

    # Pass 2: build blocks and edges.
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for index, instruction in enumerate(instructions):
        if instruction.offset in leaders:
            current = BasicBlock(offset=instruction.offset)
            blocks[instruction.offset] = current
        assert current is not None
        current.instructions.append(instruction.opname)

        next_offset = (
            instructions[index + 1].offset if index + 1 < len(instructions) else None
        )
        ends_block = (
            _is_jump(instruction)
            or instruction.opname in _TERMINATORS
            or (next_offset is not None and next_offset in leaders)
        )
        if not ends_block:
            continue

        if instruction.opname in _TERMINATORS:
            pass  # no successors
        elif _is_jump(instruction):
            target = _jump_target(instruction)
            if instruction.opname in _UNCONDITIONAL_JUMPS:
                current.successors.append(target)
            else:
                # Conditional: fall-through first, then the jump target.
                if next_offset is not None:
                    current.successors.append(next_offset)
                current.successors.append(target)
                current.is_branch = True
        elif next_offset is not None:
            current.successors.append(next_offset)
        current = None

    # Drop edges into unreachable offsets (e.g. dead code after returns).
    for block in blocks.values():
        block.successors = [s for s in block.successors if s in blocks]
        if block.is_branch and len(set(block.successors)) < 2:
            block.is_branch = False
            block.successors = list(dict.fromkeys(block.successors))
    return blocks
