"""Conservative CFG matching by synchronized traversal (§4.2).

General graph matching is expensive or undecidable, so the paper matches
CFGs by walking both graphs *simultaneously* from their entry statements,
exploiting the normalized grammar (each node has 0, 1, or 2 ordered
successors).  The score is binary: 1 for a match, 0 for any structural
disagreement.  Conservatism is a feature — a small CFG change can mean a
large behavioural change, and a false mismatch only causes the matcher to
fall back to other features.

One refinement keeps the walk robust to compiler accidents: at a branch
node the two successors may pair in order *or swapped*, because semantically
identical loops compile with opposite branch polarity (``for`` loops jump
out of the loop on exhaustion, ``while not done`` loops jump out on the
negated test).  The walk backtracks over the two orderings; CFGs are tiny,
so this stays cheap.
"""

from __future__ import annotations

from .cfg import ControlFlowGraph

__all__ = ["cfg_match", "cfg_similarity"]

Pairing = dict[int, int]


def _extend(
    first: ControlFlowGraph,
    second: ControlFlowGraph,
    a: int,
    b: int,
    forward: Pairing,
    backward: Pairing,
) -> tuple[Pairing, Pairing] | None:
    """Try to pair node *a* of *first* with node *b* of *second*.

    Returns extended (forward, backward) pairings, or None on mismatch.
    Pairings are copied on extension so backtracking is free.
    """
    if a in forward or b in backward:
        if forward.get(a) == b and backward.get(b) == a:
            return forward, backward
        return None
    if first.nodes[a] != second.nodes[b]:
        return None
    successors_a = first.edges.get(a, ())
    successors_b = second.edges.get(b, ())
    if len(successors_a) != len(successors_b):
        return None

    forward = {**forward, a: b}
    backward = {**backward, b: a}

    if len(successors_a) < 2:
        state: tuple[Pairing, Pairing] | None = (forward, backward)
        for x, y in zip(successors_a, successors_b):
            state = _extend(first, second, x, y, *state)
            if state is None:
                return None
        return state

    # Branch node: successors may pair in order or swapped.
    for order in ((0, 1), (1, 0)):
        state = (forward, backward)
        for i, j in zip((0, 1), order):
            state = _extend(first, second, successors_a[i], successors_b[j], *state)
            if state is None:
                break
        if state is not None:
            return state
    return None


def cfg_match(first: ControlFlowGraph, second: ControlFlowGraph) -> bool:
    """Synchronized-walk equality of two normalized CFGs.

    Nodes are paired starting from the entries; paired nodes must agree on
    kind, and their successors are paired in turn (branch successors up to
    polarity).  A node of one graph pairing with two different nodes of the
    other is a mismatch, making the test an isomorphism check on reachable
    structure.
    """
    return _extend(first, second, first.entry, second.entry, {}, {}) is not None


def cfg_similarity(first: ControlFlowGraph, second: ControlFlowGraph) -> float:
    """The paper's 0/1 CFG match score."""
    return 1.0 if cfg_match(first, second) else 0.0
