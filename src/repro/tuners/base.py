"""The common tuner protocol over the 14-parameter space.

PStorM's paper feeds matched profiles to exactly one optimizer — the
Starfish CBO.  This package widens that single point into a *family*:
every tuner answers the same question ("given this profile, which
configuration minimizes the What-If-predicted runtime?") through the
same :class:`Tuner` protocol, so the submit path, the serving layer,
and the league harness can swap search strategies freely.

Shared machinery lives here:

- :class:`TunerDecision` — the common result shape (a superset of the
  CBO's ``OptimizationResult`` fields, plus the tuner's name, the chosen
  ensemble member, and an optional evaluated-candidate history used by
  the bounds property tests).
- :class:`TunerContext` — optional per-submission context (job features
  and the match outcome) that policy tuners such as the ensemble read;
  search tuners ignore it.
- The **unit-cube mapping**: SPSA and the surrogate search in
  ``u ∈ [0, 1]^14`` where projection onto bounds is a plain ``clip``;
  :func:`row_from_unit` maps a cube point to a legal parameter-unit row
  (log-scale dimensions interpolate in log space, integers round,
  booleans threshold at 0.5) and :func:`unit_from_row` inverts it.
- :class:`WhatIfObjective` — a counting, memoizing wrapper around
  ``WhatIfEngine.predict`` with the CBO's quantized-key dedupe, so every
  vector tuner shares one evaluation-accounting convention: every
  candidate considered counts toward ``evaluations``; duplicates that
  never reached the engine count toward ``memo_hits``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from ..hadoop.config import CONFIGURATION_SPACE, JobConfiguration
from ..observability import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..starfish.cbo import _config_from_row, _quantize_matrix
from ..starfish.profile import JobProfile
from ..starfish.whatif import WhatIfEngine

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core cycle
    from ..core.features import JobFeatures
    from ..core.matcher import MatchOutcome

__all__ = [
    "Tuner",
    "TunerContext",
    "TunerDecision",
    "WhatIfObjective",
    "config_from_row",
    "row_from_config",
    "row_from_unit",
    "unit_from_row",
    "record_decision_metrics",
]

#: Dimensionality of the search space (the paper's Table 2.1).
DIMENSIONS = len(CONFIGURATION_SPACE)

#: Parameter-unit default row, in Table 2.1 column order.
DEFAULT_ROW: np.ndarray = np.array(
    [float(spec.default) for spec in CONFIGURATION_SPACE]
)


@dataclass(frozen=True)
class TunerContext:
    """What the submit path knows about a job beyond its profile.

    Both fields are optional — the league harness races tuners on bare
    profiles — and duck-typed so the tuners package never imports
    :mod:`repro.core` at runtime (PStorM imports *us*).
    """

    features: "JobFeatures | None" = None
    outcome: "MatchOutcome | None" = None
    #: Input size of the submitted run (``dataset.nominal_bytes``);
    #: ``None`` falls back to the profile's own collection size.
    data_bytes: int | None = None


@dataclass(frozen=True)
class TunerDecision:
    """Outcome of one tuner search — the family-wide result shape."""

    #: Registry name of the tuner that produced this decision.
    tuner: str
    best_config: JobConfiguration
    predicted_runtime: float
    default_predicted_runtime: float
    #: Candidates considered, memo hits included (the CBO convention).
    evaluations: int
    #: Candidates answered from a memo instead of the What-If engine.
    memo_hits: int = 0
    #: For the ensemble: the member whose recommendation won.
    chosen: str | None = None
    #: Every evaluated candidate as ``(config, predicted_runtime)``, in
    #: evaluation order.  Vector tuners fill this (the bounds property
    #: tests walk it); adapters leave it empty.
    history: tuple[tuple[JobConfiguration, float], ...] = ()

    @property
    def predicted_speedup(self) -> float:
        """Predicted improvement over the default configuration."""
        if self.predicted_runtime <= 0:
            return 1.0
        return self.default_predicted_runtime / self.predicted_runtime


@runtime_checkable
class Tuner(Protocol):
    """What every member of the tuner family answers."""

    name: str

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:  # pragma: no cover - protocol signature
        ...


# ----------------------------------------------------------------------
# Unit-cube mapping
# ----------------------------------------------------------------------
def _cube_bounds() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    lows = np.empty(DIMENSIONS)
    highs = np.empty(DIMENSIONS)
    log_mask = np.zeros(DIMENSIONS, dtype=bool)
    bool_mask = np.zeros(DIMENSIONS, dtype=bool)
    for j, spec in enumerate(CONFIGURATION_SPACE):
        if spec.kind == "bool":
            lows[j], highs[j] = 0.0, 1.0
            bool_mask[j] = True
            continue
        log_mask[j] = spec.log_scale
        if spec.log_scale:
            lows[j] = math.log(max(float(spec.low), 1e-9))
            highs[j] = math.log(float(spec.high))
        else:
            lows[j] = float(spec.low)
            highs[j] = float(spec.high)
    return lows, highs, log_mask, bool_mask


_LOWS, _HIGHS, _LOG_MASK, _BOOL_MASK = _cube_bounds()
_SPANS = _HIGHS - _LOWS
_INT_COLUMNS = tuple(
    j for j, spec in enumerate(CONFIGURATION_SPACE) if spec.kind == "int"
)


def row_from_unit(unit: np.ndarray) -> np.ndarray:
    """Map one unit-cube point to a legal parameter-unit row.

    Log-scale dimensions interpolate between ``log(low)`` and
    ``log(high)``, integers round to the nearest legal value, booleans
    threshold at 0.5.  Any input is clipped into the cube first, so the
    result is *always* inside every parameter's bounds — projection and
    decoding are one step.
    """
    unit = np.clip(np.asarray(unit, dtype=np.float64), 0.0, 1.0)
    values = _LOWS + unit * _SPANS
    values = np.where(_LOG_MASK, np.exp(values), values)
    values = np.where(_BOOL_MASK, (unit >= 0.5).astype(np.float64), values)
    for j in _INT_COLUMNS:
        spec = CONFIGURATION_SPACE[j]
        values[j] = min(
            float(spec.high), max(float(spec.low), float(np.rint(values[j])))
        )
    return values


def unit_from_row(row: np.ndarray) -> np.ndarray:
    """Inverse of :func:`row_from_unit` up to integer rounding."""
    row = np.asarray(row, dtype=np.float64)
    scaled = np.where(_LOG_MASK, np.log(np.maximum(row, 1e-9)), row)
    unit = (scaled - _LOWS) / np.where(_SPANS == 0.0, 1.0, _SPANS)
    unit = np.where(_BOOL_MASK, np.where(row >= 0.5, 1.0, 0.0), unit)
    return np.clip(unit, 0.0, 1.0)


def config_from_row(row: np.ndarray) -> JobConfiguration:
    """Materialize a parameter-unit row as a :class:`JobConfiguration`."""
    return _config_from_row(row)


def row_from_config(config: JobConfiguration) -> np.ndarray:
    """Parameter-unit row of *config*, in Table 2.1 column order."""
    return np.array(
        [float(getattr(config, spec.attribute)) for spec in CONFIGURATION_SPACE]
    )


# ----------------------------------------------------------------------
# The shared objective
# ----------------------------------------------------------------------
class WhatIfObjective:
    """Counting, memoizing view of the What-If cost surface.

    One instance per search: it prices parameter-unit rows through
    ``WhatIfEngine.predict``, dedupes on the CBO's quantized key so a
    revisited candidate is free, and keeps the evaluated-candidate
    history the bounds property tests inspect.
    """

    def __init__(
        self,
        whatif: WhatIfEngine,
        profile: JobProfile,
        data_bytes: int | None = None,
    ) -> None:
        self.whatif = whatif
        self.profile = profile
        self.data_bytes = data_bytes
        self.evaluations = 0
        self.memo_hits = 0
        self._memo: dict[bytes, float] = {}
        self._history: list[tuple[JobConfiguration, float]] = []

    def __call__(self, row: np.ndarray) -> float:
        """Predicted runtime of one parameter-unit candidate row."""
        self.evaluations += 1
        key = _quantize_matrix(np.asarray(row, dtype=np.float64)[None, :]).tobytes()
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        config = _config_from_row(np.asarray(row, dtype=np.float64))
        runtime = float(
            self.whatif.predict(self.profile, config, self.data_bytes).runtime_seconds
        )
        self._memo[key] = runtime
        self._history.append((config, runtime))
        return runtime

    def price_unit(self, unit: np.ndarray) -> tuple[np.ndarray, float]:
        """Price a unit-cube point; returns its legal row and runtime."""
        row = row_from_unit(unit)
        return row, self(row)

    @property
    def history(self) -> tuple[tuple[JobConfiguration, float], ...]:
        """Engine-priced candidates as ``(config, runtime)``, in order."""
        return tuple(self._history)


# ----------------------------------------------------------------------
# Shared instrumentation
# ----------------------------------------------------------------------
def record_decision_metrics(
    decision: TunerDecision,
    started: float,
    registry: MetricsRegistry | None,
) -> None:
    """Count one finished search under the ``tuner_*`` metric names."""
    sink = get_registry(registry)
    labels = {"tuner": decision.tuner}
    sink.counter(
        "tuner_optimizations_total", "tuner searches completed", labels=labels
    ).inc()
    sink.histogram(
        "tuner_evaluations",
        "What-If candidates considered per search (memo hits included)",
        labels=labels,
        buckets=COUNT_BUCKETS,
    ).observe(float(decision.evaluations))
    sink.histogram(
        "tuner_predicted_speedup",
        "predicted speedup over the default configuration per search",
        labels=labels,
        buckets=(0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0),
    ).observe(decision.predicted_speedup)
    sink.histogram(
        "tuner_optimize_seconds",
        "wall time of one tuner search",
        labels=labels,
        buckets=LATENCY_BUCKETS,
    ).observe(time.perf_counter() - started)


def traced_optimize(
    tuner_name: str,
    tracer: Tracer | None,
    registry: MetricsRegistry | None,
    run: "Any",
) -> TunerDecision:
    """Run one search under the ``tuner.optimize`` span + metrics."""
    started = time.perf_counter()
    with get_tracer(tracer).span("tuner.optimize", tuner=tuner_name) as span:
        decision: TunerDecision = run()
        span.set_attr("evaluations", decision.evaluations)
        span.set_attr("predicted_speedup", round(decision.predicted_speedup, 4))
        if decision.chosen is not None:
            span.set_attr("chosen", decision.chosen)
    record_decision_metrics(decision, started, registry)
    return decision
