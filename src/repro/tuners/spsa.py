"""SPSA: simultaneous-perturbation stochastic approximation.

The noisy-gradient tuner of "Performance Tuning of Hadoop MapReduce: A
Noisy Gradient Approach" (PAPERS.md), transplanted onto the What-If cost
surface: instead of measuring real cluster runs, each gradient probe is
one What-If prediction — two predictions per iteration regardless of the
14 dimensions, which is the whole point of SPSA against coordinate-wise
finite differences.

The search runs in the unit cube (:mod:`repro.tuners.base`): every
iterate and every perturbed probe is projected onto ``[0, 1]^14`` by a
plain clip *before* decoding, so no evaluated candidate can ever leave a
parameter's legal range (the bounds property test walks the history to
prove it).  The objective is normalized by the default configuration's
predicted runtime, which makes the gain schedule scale-free across jobs
whose runtimes span minutes to hours.

Fully deterministic for a fixed seed: one ``numpy`` generator drives the
Rademacher perturbation directions and nothing else consults entropy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..observability import MetricsRegistry, Tracer
from ..starfish.profile import JobProfile
from ..starfish.whatif import WhatIfEngine
from .base import (
    DEFAULT_ROW,
    DIMENSIONS,
    TunerContext,
    TunerDecision,
    WhatIfObjective,
    config_from_row,
    traced_optimize,
    unit_from_row,
)

__all__ = ["SpsaTuner"]


@dataclass
class SpsaTuner:
    """Projected SPSA over the What-If objective.

    Attributes:
        whatif: the What-If engine used as the objective.
        iterations: gradient iterations (2 probes each).
        a0, alpha, stability: Spall's gain sequence
            ``a_k = a0 / (k + 1 + stability)^alpha`` for the step size.
        c0, gamma: perturbation sequence ``c_k = c0 / (k + 1)^gamma``;
            ``c0`` is in unit-cube units, so 0.15 spans 15% of every
            parameter's (log-)range.
        restarts: independent seeded starts beyond the default-config
            start; the best evaluated candidate across all runs wins.
        seed: RNG seed; the search is fully deterministic.
    """

    whatif: WhatIfEngine
    iterations: int = 25
    a0: float = 0.25
    alpha: float = 0.602
    stability: float = 5.0
    c0: float = 0.15
    gamma: float = 0.101
    restarts: int = 1
    seed: int = 0
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    name = "spsa"

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:
        return traced_optimize(
            self.name,
            self.tracer,
            self.registry,
            lambda: self._optimize(profile, data_bytes),
        )

    def _optimize(
        self, profile: JobProfile, data_bytes: int | None
    ) -> TunerDecision:
        objective = WhatIfObjective(self.whatif, profile, data_bytes)
        rng = np.random.default_rng(self.seed)

        default_runtime = objective(DEFAULT_ROW)
        scale = max(default_runtime, 1e-9)
        best_row, best_runtime = DEFAULT_ROW.copy(), default_runtime

        def consider(row: np.ndarray, runtime: float) -> None:
            nonlocal best_row, best_runtime
            # Strict <: the first minimum wins, like the CBO's stable sort.
            if runtime < best_runtime:
                best_row, best_runtime = row, runtime

        starts = [unit_from_row(DEFAULT_ROW)]
        for __ in range(max(0, self.restarts - 1)):
            starts.append(rng.uniform(0.0, 1.0, size=DIMENSIONS))

        for u0 in starts:
            u = np.clip(u0, 0.0, 1.0)
            for k in range(self.iterations):
                c_k = self.c0 / (k + 1) ** self.gamma
                a_k = self.a0 / (k + 1 + self.stability) ** self.alpha
                delta = rng.integers(0, 2, size=DIMENSIONS) * 2.0 - 1.0
                row_plus, y_plus = objective.price_unit(u + c_k * delta)
                row_minus, y_minus = objective.price_unit(u - c_k * delta)
                consider(row_plus, y_plus)
                consider(row_minus, y_minus)
                # delta is Rademacher, so 1/delta == delta elementwise.
                gradient = ((y_plus - y_minus) / scale) / (2.0 * c_k) * delta
                u = np.clip(u - a_k * gradient, 0.0, 1.0)
            final_row, final_runtime = objective.price_unit(u)
            consider(final_row, final_runtime)

        return TunerDecision(
            tuner=self.name,
            best_config=config_from_row(best_row),
            predicted_runtime=best_runtime,
            default_predicted_runtime=default_runtime,
            evaluations=objective.evaluations,
            memo_hits=objective.memo_hits,
            history=objective.history,
        )
