"""Surrogate tuner: a Bayesian-style model fit over What-If evaluations.

Where SPSA walks the cost surface locally, this tuner *models* it: a
Gaussian-kernel ridge surrogate is fit over every candidate evaluated so
far (in unit-cube coordinates), and each round evaluates the point of a
seeded candidate pool that minimizes a lower-confidence-bound style
acquisition — surrogate mean minus an exploration bonus proportional to
the distance from the nearest evaluated point.  All linear algebra is
plain deterministic NumPy (no SciPy optimizers), so the search is
bit-reproducible for a fixed seed.

Warm starting (the PStorM angle): when a profile store is supplied, the
initial design is seeded from **matched-profile history** — the stored
profiles closest in input size to the probe job contribute (a) the
Appendix-B RBO recommendation computed *from their own profile* and (b)
a "shape echo" carrying their observed reducer count.  A store that has
seen similar jobs therefore starts the surrogate in regions that worked
before, instead of uniform noise; an unreachable store (chaos) silently
degrades to the cold start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..hadoop.config import CONFIGURATION_SPACE
from ..observability import MetricsRegistry, Tracer, get_registry
from ..starfish.profile import JobProfile
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.whatif import WhatIfEngine
from .base import (
    DEFAULT_ROW,
    DIMENSIONS,
    TunerContext,
    TunerDecision,
    WhatIfObjective,
    config_from_row,
    row_from_config,
    traced_optimize,
    unit_from_row,
)

__all__ = ["SurrogateTuner"]

#: Column of ``mapred.reduce.tasks`` in Table 2.1 order.
_REDUCE_COLUMN = next(
    j
    for j, spec in enumerate(CONFIGURATION_SPACE)
    if spec.attribute == "num_reduce_tasks"
)


@dataclass
class SurrogateTuner:
    """Kernel-ridge surrogate search over the What-If objective.

    Attributes:
        whatif: the What-If engine used as the objective.
        store: optional profile store whose history warm-starts the
            initial design (duck-typed: anything with ``bulk_profiles``).
        initial_samples: size of the seeded random initial design.
        rounds: surrogate-guided evaluations after the initial design.
        candidate_pool: acquisition pool size per round.
        warm_start_limit: most history profiles mined for seed points.
        length_scale: Gaussian kernel width in unit-cube units.
        ridge: Tikhonov regularizer added to the kernel diagonal.
        explore: exploration weight on the distance-to-design bonus
            (objective values are normalized by the default runtime, so
            this is unitless).
        seed: RNG seed; the search is fully deterministic.
    """

    whatif: WhatIfEngine
    store: Any = None
    initial_samples: int = 16
    rounds: int = 12
    candidate_pool: int = 256
    warm_start_limit: int = 4
    length_scale: float = 0.35
    ridge: float = 1e-6
    explore: float = 0.5
    seed: int = 0
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    name = "surrogate"

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:
        return traced_optimize(
            self.name,
            self.tracer,
            self.registry,
            lambda: self._optimize(profile, data_bytes),
        )

    # ------------------------------------------------------------------
    def _warm_start_rows(self, profile: JobProfile) -> list[np.ndarray]:
        """Seed rows mined from the store's profile history."""
        if self.store is None:
            return []
        try:
            history = self.store.bulk_profiles()
        except Exception:
            # Store unreachable (chaos): cold-start instead of failing.
            get_registry(self.registry).counter(
                "tuner_warm_start_failures_total",
                "surrogate warm starts that lost the store",
            ).inc()
            return []
        ranked = sorted(
            history.items(),
            key=lambda item: (
                abs(item[1].input_bytes - profile.input_bytes),
                item[0],
            ),
        )[: self.warm_start_limit]
        rbo = RuleBasedOptimizer(self.whatif.cluster)
        rows: list[np.ndarray] = []
        for __, hist in ranked:
            try:
                rows.append(row_from_config(rbo.recommend(hist).config))
            except Exception:
                pass  # malformed history profile: skip its seed point
            if hist.num_reduce_tasks > 0:
                echo = DEFAULT_ROW.copy()
                echo[_REDUCE_COLUMN] = float(hist.num_reduce_tasks)
                rows.append(echo)
        if rows:
            get_registry(self.registry).counter(
                "tuner_warm_start_points_total",
                "surrogate seed points mined from stored profiles",
            ).inc(len(rows))
        return rows

    def _optimize(
        self, profile: JobProfile, data_bytes: int | None
    ) -> TunerDecision:
        objective = WhatIfObjective(self.whatif, profile, data_bytes)
        rng = np.random.default_rng(self.seed)

        default_runtime = objective(DEFAULT_ROW)
        scale = max(default_runtime, 1e-9)

        design: list[np.ndarray] = [unit_from_row(DEFAULT_ROW)]
        values: list[float] = [default_runtime / scale]
        best_row, best_runtime = DEFAULT_ROW.copy(), default_runtime

        def evaluate(unit: np.ndarray) -> None:
            nonlocal best_row, best_runtime
            row, runtime = objective.price_unit(unit)
            design.append(np.clip(unit, 0.0, 1.0))
            values.append(runtime / scale)
            if runtime < best_runtime:
                best_row, best_runtime = row, runtime

        for row in self._warm_start_rows(profile):
            evaluate(unit_from_row(row))
        for unit in rng.uniform(0.0, 1.0, size=(self.initial_samples, DIMENSIONS)):
            evaluate(unit)

        for __ in range(self.rounds):
            X = np.vstack(design)
            y = np.asarray(values)
            weights = self._fit(X, y)
            pool = rng.uniform(0.0, 1.0, size=(self.candidate_pool, DIMENSIONS))
            cross = self._kernel(pool, X)
            mean = cross @ weights
            nearest = np.sqrt(
                np.maximum(
                    (pool * pool).sum(axis=1)[:, None]
                    - 2.0 * pool @ X.T
                    + (X * X).sum(axis=1)[None, :],
                    0.0,
                )
            ).min(axis=1)
            acquisition = mean - self.explore * nearest
            evaluate(pool[int(np.argmin(acquisition))])

        return TunerDecision(
            tuner=self.name,
            best_config=config_from_row(best_row),
            predicted_runtime=best_runtime,
            default_predicted_runtime=default_runtime,
            evaluations=objective.evaluations,
            memo_hits=objective.memo_hits,
            history=objective.history,
        )

    # ------------------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            (a * a).sum(axis=1)[:, None]
            - 2.0 * a @ b.T
            + (b * b).sum(axis=1)[None, :]
        )
        return np.exp(-np.maximum(sq, 0.0) / (2.0 * self.length_scale**2))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        gram = self._kernel(X, X)
        gram[np.diag_indices_from(gram)] += self.ridge
        return np.linalg.solve(gram, y)
