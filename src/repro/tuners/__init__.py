"""The tuner family: one protocol, many search strategies.

``repro.tuners`` widens the paper's single cost-based optimizer into a
raceable family behind one :class:`~repro.tuners.base.Tuner` protocol:

- ``rbo`` / ``cbo`` — adapters over the existing Appendix-B rules and
  the Starfish recursive-random-search CBO (bit-identical to calling
  them directly);
- ``spsa`` — simultaneous-perturbation stochastic gradient descent on
  the What-If cost surface (two probes per iteration, projected onto
  parameter bounds);
- ``surrogate`` — a kernel-ridge surrogate model over What-If
  evaluations, warm-started from profile history in the store;
- ``ensemble`` — a policy that shortlists members per job from job
  features and match quality and keeps the best prediction.

:func:`make_tuner` is the registry the submit path, the serving config,
and the CLI resolve names through.  The league harness that races the
family across the workload zoo lives in :mod:`repro.tuners.league`
(imported lazily — it pulls in the experiment drivers).
"""

from __future__ import annotations

from typing import Any

from ..hadoop.cluster import ClusterSpec
from ..observability import MetricsRegistry, Tracer
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.whatif import WhatIfEngine
from .adapters import CboTuner, RboTuner
from .base import Tuner, TunerContext, TunerDecision, WhatIfObjective
from .ensemble import EnsembleTuner
from .spsa import SpsaTuner
from .surrogate import SurrogateTuner

__all__ = [
    "TUNER_NAMES",
    "CboTuner",
    "EnsembleTuner",
    "RboTuner",
    "SpsaTuner",
    "SurrogateTuner",
    "Tuner",
    "TunerContext",
    "TunerDecision",
    "WhatIfObjective",
    "make_tuner",
]

#: Resolvable tuner names, in leaderboard display order.
TUNER_NAMES: tuple[str, ...] = ("rbo", "cbo", "spsa", "surrogate", "ensemble")


def make_tuner(
    name: str,
    whatif: WhatIfEngine,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    store: Any = None,
    cbo: CostBasedOptimizer | None = None,
    rbo: RuleBasedOptimizer | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    budgets: "dict[str, Any] | None" = None,
) -> Tuner:
    """Build one named tuner over a What-If engine.

    Args:
        name: one of :data:`TUNER_NAMES`.
        whatif: the What-If engine every member prices candidates on.
        cluster: cluster shape for the RBO; defaults to the engine's.
        seed: search seed (the adapters' underlying optimizers keep
            their own seeds when passed in explicitly).
        store: profile store mined by the surrogate's warm start.
        cbo/rbo: existing optimizer instances to adapt; fresh ones are
            created if omitted (the CBO inherits *seed*).
        budgets: per-tuner constructor overrides, keyed by tuner name —
            e.g. ``{"spsa": {"iterations": 8}}`` for quick-mode races.
    """
    cluster = cluster if cluster is not None else whatif.cluster
    budgets = budgets or {}

    def overrides(tuner_name: str) -> dict[str, Any]:
        return dict(budgets.get(tuner_name, {}))

    if name == "cbo":
        if cbo is None:
            cbo = CostBasedOptimizer(
                whatif, seed=seed, registry=registry, **overrides("cbo")
            )
        return CboTuner(cbo, registry=registry, tracer=tracer)
    if name == "rbo":
        if rbo is None:
            rbo = RuleBasedOptimizer(cluster)
        return RboTuner(rbo, whatif, registry=registry, tracer=tracer)
    if name == "spsa":
        return SpsaTuner(
            whatif, seed=seed, registry=registry, tracer=tracer,
            **overrides("spsa"),
        )
    if name == "surrogate":
        return SurrogateTuner(
            whatif, store=store, seed=seed, registry=registry, tracer=tracer,
            **overrides("surrogate"),
        )
    if name == "ensemble":
        members = {
            member: make_tuner(
                member, whatif, cluster=cluster, seed=seed, store=store,
                cbo=cbo, rbo=rbo, registry=registry, tracer=tracer,
                budgets=budgets,
            )
            for member in ("rbo", "cbo", "spsa", "surrogate")
        }
        return EnsembleTuner(
            members, registry=registry, tracer=tracer, **overrides("ensemble")
        )
    raise ValueError(f"unknown tuner {name!r}; expected one of {TUNER_NAMES}")
