"""Ensemble policy: pick a tuner per job from features and match quality.

The policy composes a per-job **shortlist** from what the submit path
knows — the profile's shape and, when available, the matcher's verdict:

- the CBO is *always* shortlisted (it is the paper's optimizer and the
  strongest general-purpose member, so the ensemble can never do worse
  than it on any job);
- an **uncertain profile** (no match outcome, an unmatched probe, a
  composite profile stitched from two donors, or a cost-based-fallback
  match) adds the surrogate — model-based exploration hedges against a
  profile that may mispredict the cost surface;
- a shuffle-heavy job (reduce side present, input at or beyond
  ``spsa_bytes``) adds SPSA, whose two-probe gradients are cheap in the
  dimensions where shuffle knobs interact;
- a map-only profile adds the RBO, whose map-side rules are nearly free
  and occasionally sharpest there.

Each shortlisted member runs under the *same* seed and the best
predicted configuration wins (ties break in shortlist order, so the
decision is deterministic).  The decision's ``chosen`` field names the
winning member; ``evaluations`` sums the whole shortlist's budget — the
league leaderboard charges the ensemble honestly for its hedging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..observability import MetricsRegistry, Tracer, get_registry
from ..starfish.profile import JobProfile
from .base import Tuner, TunerContext, TunerDecision, traced_optimize

__all__ = ["EnsembleTuner"]

#: Match stages that mark the matched profile as low-confidence.
_UNCERTAIN_STAGES = frozenset({"cost-fallback", "no-match", "no-match-dynamic"})


@dataclass
class EnsembleTuner:
    """Feature/match-quality-routed portfolio over the tuner family."""

    members: Mapping[str, Tuner]
    #: Input size at which a reducing job is "shuffle-heavy" (adds SPSA).
    spsa_bytes: int = 1 << 30
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    name = "ensemble"

    def __post_init__(self) -> None:
        if "cbo" not in self.members:
            raise ValueError("the ensemble requires a 'cbo' member")

    # ------------------------------------------------------------------
    def shortlist(
        self, profile: JobProfile, context: TunerContext | None
    ) -> tuple[str, ...]:
        """Member names to race for this job, in priority order."""
        names = ["cbo"]
        outcome = context.outcome if context is not None else None
        uncertain = (
            outcome is None
            or not outcome.matched
            or outcome.is_composite
            or outcome.map_match.stage in _UNCERTAIN_STAGES
            or (
                outcome.reduce_match is not None
                and outcome.reduce_match.stage in _UNCERTAIN_STAGES
            )
        )
        if uncertain:
            names.append("surrogate")
        if profile.has_reduce and profile.input_bytes >= self.spsa_bytes:
            names.append("spsa")
        if not profile.has_reduce:
            names.append("rbo")
        return tuple(name for name in names if name in self.members)

    # ------------------------------------------------------------------
    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:
        return traced_optimize(
            self.name,
            self.tracer,
            self.registry,
            lambda: self._optimize(profile, data_bytes, context),
        )

    def _optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None,
        context: TunerContext | None,
    ) -> TunerDecision:
        names = self.shortlist(profile, context)
        registry = get_registry(self.registry)
        best: TunerDecision | None = None
        evaluations = 0
        memo_hits = 0
        for name in names:
            decision = self.members[name].optimize(profile, data_bytes, context)
            evaluations += decision.evaluations
            memo_hits += decision.memo_hits
            # Strict <: the first minimum wins (shortlist priority order).
            if best is None or decision.predicted_runtime < best.predicted_runtime:
                best = decision
        assert best is not None  # shortlist always contains "cbo"
        registry.counter(
            "tuner_ensemble_selections_total",
            "ensemble decisions by winning member",
            labels={"member": best.tuner},
        ).inc()
        registry.histogram(
            "tuner_ensemble_shortlist_size",
            "members raced per ensemble decision",
            buckets=(1.0, 2.0, 3.0, 4.0),
        ).observe(float(len(names)))
        return TunerDecision(
            tuner=self.name,
            best_config=best.best_config,
            predicted_runtime=best.predicted_runtime,
            default_predicted_runtime=best.default_predicted_runtime,
            evaluations=evaluations,
            memo_hits=memo_hits,
            chosen=best.tuner,
        )
