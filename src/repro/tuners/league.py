"""The tuner league: race the family across the workload zoo.

One cell per (tuner, workload): every tuner of the roster optimizes the
same profiled workload under the *same per-entry seed*, so leaderboard
differences measure search strategy, never luck.  Cells are independent
and fan out over :func:`repro.experiments.common.parallel_cells`; the
merged payload is **a pure function of (seed, roster, entries, budgets)**
— byte-identical across re-runs and worker counts, which is what the
league benchmark and the CI smoke assert.

Scoring: each cell records the tuner's predicted speedup over the
default configuration (both runtimes priced by the same What-If engine)
and the What-If-evaluation budget it spent.  The leaderboard ranks by
mean predicted speedup, ties by total budget then name, and also carries
``speedup_per_kiloeval`` — speedup won per thousand evaluations — so a
cheap tuner's efficiency is visible beside an expensive tuner's peak.

The surrogate's warm start mines the shared suite store (every profiled
workload is stored, the SD content state), mirroring a production store
that has seen the workload mix before.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..experiments.common import (
    ExperimentContext,
    build_store,
    collect_suite,
    parallel_cells,
)
from ..starfish.whatif import WhatIfEngine
from ..workloads.benchmark import BenchmarkEntry, standard_benchmark
from . import TUNER_NAMES, make_tuner
from .base import TunerContext

__all__ = ["LeagueConfig", "quick_entries", "run_league", "leaderboard_json"]

#: Reduced search budgets for quick-mode (CI smoke) races.
QUICK_BUDGETS: dict[str, dict[str, Any]] = {
    "cbo": {
        "num_samples": 40,
        "refine_rounds": 2,
        "elite": 4,
        "perturbations_per_elite": 4,
    },
    "spsa": {"iterations": 10},
    "surrogate": {"initial_samples": 8, "rounds": 6, "candidate_pool": 64},
}


@dataclass(frozen=True)
class LeagueConfig:
    """One league season: roster, workloads, budgets, seed."""

    seed: int = 0
    tuners: tuple[str, ...] = TUNER_NAMES
    #: Thread fan-out for profiling and race cells (never affects the
    #: payload — cells are seeded by position and merged by sorted key).
    workers: int = 1
    #: Quick mode: first-per-family workload subset + reduced budgets.
    quick: bool = False
    #: Explicit workload list; None = the zoo (or its quick subset).
    entries: "list[BenchmarkEntry] | None" = None
    #: Per-tuner constructor overrides; None = defaults (quick mode
    #: falls back to :data:`QUICK_BUDGETS`).
    budgets: "Mapping[str, Mapping[str, Any]] | None" = None

    def __post_init__(self) -> None:
        unknown = [name for name in self.tuners if name not in TUNER_NAMES]
        if unknown:
            raise ValueError(
                f"unknown tuners {unknown!r}; expected a subset of {TUNER_NAMES}"
            )
        if not self.tuners:
            raise ValueError("the league needs at least one tuner")


def quick_entries() -> list[BenchmarkEntry]:
    """The first workload of every family: one lap, all terrains."""
    chosen: list[BenchmarkEntry] = []
    seen: set[str] = set()
    for entry in standard_benchmark(pigmix_queries=1):
        if entry.domain not in seen:
            seen.add(entry.domain)
            chosen.append(entry)
    return chosen


def run_league(config: LeagueConfig) -> dict[str, Any]:
    """Race the roster and return the leaderboard payload."""
    ctx = ExperimentContext.create(config.seed, workers=config.workers)
    entries = config.entries
    if entries is None:
        entries = quick_entries() if config.quick else standard_benchmark()
    budgets = config.budgets
    if budgets is None:
        budgets = QUICK_BUDGETS if config.quick else {}

    records = collect_suite(ctx, entries, seed=config.seed)
    store = build_store(records)
    entry_index = {entry.key: position for position, entry in enumerate(entries)}

    def make_cell(
        tuner_name: str, entry: BenchmarkEntry
    ) -> Callable[[], dict[str, Any]]:
        record = records[entry.key]
        run_seed = config.seed + entry_index[entry.key]
        data_bytes = entry.dataset.nominal_bytes

        def cell() -> dict[str, Any]:
            # A private What-If engine per cell: the engines are cheap
            # and the race cells must be free of shared mutable state.
            tuner = make_tuner(
                tuner_name,
                WhatIfEngine(ctx.cluster),
                cluster=ctx.cluster,
                seed=run_seed,
                store=store,
                budgets=budgets,
            )
            decision = tuner.optimize(
                record.full_profile,
                data_bytes=data_bytes,
                context=TunerContext(features=record.features, data_bytes=data_bytes),
            )
            return {
                "chosen": decision.chosen,
                "default_predicted_runtime": round(
                    decision.default_predicted_runtime, 6
                ),
                "evaluations": decision.evaluations,
                "memo_hits": decision.memo_hits,
                "predicted_runtime": round(decision.predicted_runtime, 6),
                "speedup": round(decision.predicted_speedup, 6),
            }

        return cell

    tasks = {
        f"{tuner_name}|{entry.key}": make_cell(tuner_name, entry)
        for tuner_name in config.tuners
        for entry in entries
    }
    raced = parallel_cells(tasks, workers=config.workers)

    families: dict[str, list[str]] = {}
    for entry in entries:
        families.setdefault(entry.domain, []).append(entry.key)

    cells: dict[str, dict[str, Any]] = {name: {} for name in config.tuners}
    for key, outcome in raced.items():
        tuner_name, entry_key = key.split("|", 1)
        cells[tuner_name][entry_key] = outcome

    tuner_rows: dict[str, dict[str, Any]] = {}
    for name in config.tuners:
        speedups = [cells[name][entry.key]["speedup"] for entry in entries]
        evaluations = sum(
            cells[name][entry.key]["evaluations"] for entry in entries
        )
        mean_speedup = sum(speedups) / len(speedups)
        mean_evaluations = evaluations / len(entries)
        per_family = {
            family: round(
                sum(cells[name][key]["speedup"] for key in keys) / len(keys), 6
            )
            for family, keys in sorted(families.items())
        }
        tuner_rows[name] = {
            "families": per_family,
            "mean_evaluations": round(mean_evaluations, 6),
            "mean_speedup": round(mean_speedup, 6),
            "speedup_per_kiloeval": round(
                (mean_speedup - 1.0) * 1000.0 / max(mean_evaluations, 1.0), 6
            ),
            "total_evaluations": evaluations,
        }

    ranked = sorted(
        config.tuners,
        key=lambda name: (
            -tuner_rows[name]["mean_speedup"],
            tuner_rows[name]["total_evaluations"],
            name,
        ),
    )
    leaderboard = [
        {
            "mean_speedup": tuner_rows[name]["mean_speedup"],
            "rank": position + 1,
            "speedup_per_kiloeval": tuner_rows[name]["speedup_per_kiloeval"],
            "total_evaluations": tuner_rows[name]["total_evaluations"],
            "tuner": name,
        }
        for position, name in enumerate(ranked)
    ]

    return {
        "cells": cells,
        "config": {
            "entries": [entry.key for entry in entries],
            "quick": config.quick,
            "seed": config.seed,
            "tuners": list(config.tuners),
        },
        "families": {family: keys for family, keys in sorted(families.items())},
        "leaderboard": leaderboard,
        "tuners": tuner_rows,
    }


def leaderboard_json(payload: Mapping[str, Any]) -> str:
    """The canonical byte-stable rendering of a league payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
