"""Adapters: the paper's own optimizers behind the family protocol.

The point of the adapters is that *nothing changes* for the existing
optimizers — :class:`CboTuner.optimize` is one delegation to
``CostBasedOptimizer.optimize`` and its decision carries that result's
fields verbatim (the league benchmark asserts bit-identity against a
direct call), and :class:`RboTuner` wraps the Appendix-B rules, pricing
the recommendation through the What-If engine only so its decision is
comparable on the same leaderboard axes as every search tuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..observability import MetricsRegistry, Tracer
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.profile import JobProfile
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.whatif import WhatIfEngine
from ..hadoop.config import JobConfiguration
from .base import TunerContext, TunerDecision, traced_optimize

__all__ = ["CboTuner", "RboTuner"]


@dataclass
class CboTuner:
    """The Starfish cost-based optimizer, unchanged, as a family member."""

    cbo: CostBasedOptimizer
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    name = "cbo"

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:
        def run() -> TunerDecision:
            result = self.cbo.optimize(profile, data_bytes)
            return TunerDecision(
                tuner=self.name,
                best_config=result.best_config,
                predicted_runtime=result.predicted_runtime,
                default_predicted_runtime=result.default_predicted_runtime,
                evaluations=result.evaluations,
                memo_hits=result.memo_hits,
            )

        return traced_optimize(self.name, self.tracer, self.registry, run)


@dataclass
class RboTuner:
    """The Appendix-B rule-based optimizer as a family member.

    The rules themselves never consult the What-If engine; the two
    predictions here (recommendation + default) exist purely so the
    decision carries the same speedup/budget axes as every other tuner.
    A rule failure falls back to the default configuration — the same
    posture as PStorM's degradation ladder.
    """

    rbo: RuleBasedOptimizer
    whatif: WhatIfEngine
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    name = "rbo"

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
        context: TunerContext | None = None,
    ) -> TunerDecision:
        def run() -> TunerDecision:
            try:
                config = self.rbo.recommend(profile).config
            except Exception:
                config = JobConfiguration()
            default_runtime = float(
                self.whatif.predict(
                    profile, JobConfiguration(), data_bytes
                ).runtime_seconds
            )
            runtime = float(
                self.whatif.predict(profile, config, data_bytes).runtime_seconds
            )
            return TunerDecision(
                tuner=self.name,
                best_config=config,
                predicted_runtime=runtime,
                default_predicted_runtime=default_runtime,
                evaluations=2,
            )

        return traced_optimize(self.name, self.tracer, self.registry, run)
