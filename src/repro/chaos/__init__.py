"""Deterministic fault injection and resilience for the serving path.

Three pieces:

- :mod:`plan` — seeded, schedulable fault plans (:class:`FaultPlan`)
  with probabilistic per-operation faults, region-server crash windows,
  a JSON codec, and the CLI's preset vocabulary.
- :mod:`injector` — :class:`FaultInjector`, a plan's runtime, consulted
  by the HBase substrate at operation boundaries.
- :mod:`retry` — :class:`RetryPolicy` budgets, virtual-clock exponential
  backoff, and :class:`StoreUnavailableError`, the signal that lets
  ``PStorM.submit`` degrade gracefully instead of crashing.

Like the observability module's registry/tracer, a process-wide default
injector can be installed (:func:`set_default_injector`) so every
substrate built afterwards — including the stores experiments create
internally — runs under the same chaos; the CLI's ``--chaos`` flag does
exactly that.  The default is ``None``: no chaos unless asked for.

See ``docs/resilience.md`` for the plan format and degradation ladder.
"""

from __future__ import annotations

from .injector import FaultInjector
from .plan import (
    PRESETS,
    FaultPlan,
    FaultSpec,
    ServerCrash,
    crash_point_plan,
    flaky_plan,
    outage_plan,
    plan_from_spec,
    replica_kill_plan,
    rolling_restart_plan,
    slow_plan,
    worker_kill_plan,
)
from .retry import (
    RetryPolicy,
    StoreUnavailableError,
    VirtualClock,
    call_with_retry,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ServerCrash",
    "PRESETS",
    "flaky_plan",
    "outage_plan",
    "slow_plan",
    "crash_point_plan",
    "rolling_restart_plan",
    "worker_kill_plan",
    "replica_kill_plan",
    "plan_from_spec",
    "RetryPolicy",
    "StoreUnavailableError",
    "VirtualClock",
    "call_with_retry",
    "default_injector",
    "set_default_injector",
    "get_injector",
]

_default_injector: FaultInjector | None = None


def default_injector() -> FaultInjector | None:
    """The process-wide injector substrates fall back to (None = no chaos)."""
    return _default_injector


def set_default_injector(
    injector: FaultInjector | None,
) -> FaultInjector | None:
    """Install the process default; returns the previous one.

    Only substrates constructed *after* this call pick the injector up
    (resolution happens at ``HBaseCluster`` construction, keeping the
    per-operation cost of the no-chaos case at one attribute check).
    """
    global _default_injector
    previous, _default_injector = _default_injector, injector
    return previous


def get_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Dependency-injection helper: explicit injector or the default."""
    return injector if injector is not None else _default_injector
