"""Seeded, schedulable fault plans for the HBase substrate.

A :class:`FaultPlan` is a declarative description of the faults one
experiment run should suffer: probabilistic per-operation faults
(:class:`FaultSpec`) and deterministic region-server crash windows
(:class:`ServerCrash`).  Plans are plain values with a JSON codec, so a
chaos experiment is reproducible from a seed plus a small document — the
same philosophy as the scheduler-side :class:`repro.hadoop.faults.FaultModel`,
lifted to the serving path.

Time is *logical*: specs are scheduled against the injector's operation
counter (one tick per substrate ``put``/``get``/``scan``), never against
wall clocks, which is what makes a seeded plan bit-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "FaultSpec",
    "ServerCrash",
    "FaultPlan",
    "OPS",
    "KINDS",
    "flaky_plan",
    "outage_plan",
    "slow_plan",
    "crash_point_plan",
    "worker_kill_plan",
    "replica_kill_plan",
    "rolling_restart_plan",
    "PRESETS",
    "plan_from_spec",
]

#: Substrate operations the injector is consulted for. ``*`` matches all.
#: The ``lsm-*`` and ``snapshot`` points fire on *durable* storage
#: internals (WAL append, SSTable flush, compaction, checkpoint write)
#: and exist so ``crash`` faults can kill the process at any persistence
#: boundary; in-memory stores never consult them.
#: ``dispatch`` fires on the process-pool frontend handing one request
#: to a worker process; it exists for ``kill`` faults.
#: ``split``/``merge``/``rebalance`` fire at the head of the matching
#: region-topology operation (before any mutation), so crash faults can
#: kill a run at every region-maintenance boundary.
OPS = (
    "put", "get", "scan", "lsm-put", "lsm-flush", "lsm-compact",
    "snapshot", "dispatch", "split", "merge", "rebalance", "*",
)
#: Fault kinds: raise-and-retryable, server-down, added latency, a
#: simulated process kill (``crash`` — NOT retryable; recovery means
#: reopening the store from disk), or a serving-worker SIGKILL
#: (``kill`` — the process-pool frontend respawns the worker and
#: re-dispatches its in-flight work).
KINDS = ("transient", "unavailable", "slow", "crash", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One probabilistic fault source.

    Attributes:
        op: which substrate operation to afflict (``put``/``get``/``scan``
            or ``*`` for all).
        kind: ``transient`` raises :class:`~repro.hbase.errors.TransientError`,
            ``unavailable`` raises
            :class:`~repro.hbase.errors.ServerUnavailableError`, ``slow``
            advances the injector's virtual clock by ``delay_seconds``
            (a modelled slow response — it eats retry deadline budget
            without failing the call), and ``crash`` raises
            :class:`~repro.hbase.errors.SimulatedCrashError` — a
            non-retryable process kill used by the crash-recovery
            harness to stop a run dead at a persistence boundary.
        probability: chance one matching operation is afflicted.
        delay_seconds: virtual latency added by ``slow`` faults.
        start_after: first operation index (inclusive) the spec covers.
        stop_after: operation index (exclusive) the spec stops at;
            ``None`` means never stops.
        server_id: restrict to one region server (``None`` = any).
        scope: what ``start_after``/``stop_after`` count — ``"global"``
            (the injector's overall operation counter, the historical
            behavior) or ``"op"`` (only operations matching this spec's
            ``op`` name, so e.g. "the third *dispatch*" stays the third
            dispatch no matter how much store traffic interleaves).
    """

    op: str = "*"
    kind: str = "transient"
    probability: float = 1.0
    delay_seconds: float = 0.05
    start_after: int = 0
    stop_after: int | None = None
    server_id: int | None = None
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; expected one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        if self.start_after < 0:
            raise ValueError("start_after must be >= 0")
        if self.stop_after is not None and self.stop_after <= self.start_after:
            raise ValueError("stop_after must exceed start_after")
        if self.scope not in ("global", "op"):
            raise ValueError(f"unknown scope {self.scope!r}")

    def applies(
        self,
        op: str,
        server_id: int | None,
        index: int,
        op_index: int | None = None,
    ) -> bool:
        """Whether this spec covers operation *index* of kind *op*.

        *op_index* is the per-op-name counter; ``scope="op"`` specs
        schedule against it (falling back to *index* when the caller
        does not track per-op counts).
        """
        if self.op != "*" and self.op != op:
            return False
        if self.server_id is not None and server_id != self.server_id:
            return False
        effective = (
            op_index
            if self.scope == "op" and op_index is not None
            else index
        )
        if effective < self.start_after:
            return False
        if self.stop_after is not None and effective >= self.stop_after:
            return False
        return True


@dataclass(frozen=True)
class ServerCrash:
    """A deterministic crash/recovery window for one region server.

    Operations routed to ``server_id`` whose index falls inside
    ``[crash_at, crash_at + downtime)`` raise
    :class:`~repro.hbase.errors.ServerUnavailableError`; the server
    recovers when the window ends (``downtime=None`` never recovers).
    """

    server_id: int
    crash_at: int
    downtime: int | None = None

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError("server_id must be >= 0")
        if self.crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        if self.downtime is not None and self.downtime <= 0:
            raise ValueError("downtime must be positive (or None for forever)")

    def covers(self, server_id: int | None, index: int) -> bool:
        if server_id != self.server_id:
            return False
        if index < self.crash_at:
            return False
        return self.downtime is None or index < self.crash_at + self.downtime


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults for one run.

    The seed fixes the injector's RNG, so a plan plus an identical
    operation sequence yields an identical fault sequence — the property
    ``tests/test_chaos.py`` asserts with Hypothesis.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()
    crashes: tuple[ServerCrash, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans; store tuples for hashing.
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- JSON codec ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [asdict(spec) for spec in self.faults],
            "crashes": [asdict(crash) for crash in self.crashes],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(
                FaultSpec(**spec) for spec in payload.get("faults", ())
            ),
            crashes=tuple(
                ServerCrash(**crash) for crash in payload.get("crashes", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Presets (the CLI's --chaos vocabulary)
# ----------------------------------------------------------------------
def flaky_plan(seed: int = 0, probability: float = 0.2) -> FaultPlan:
    """Every operation fails transiently with *probability*."""
    return FaultPlan(
        seed=seed,
        faults=(FaultSpec(op="*", kind="transient", probability=probability),),
    )


def outage_plan(seed: int = 0) -> FaultPlan:
    """Total store-probe outage: every scan fails, puts/gets survive."""
    return FaultPlan(
        seed=seed,
        faults=(FaultSpec(op="scan", kind="unavailable", probability=1.0),),
    )


def slow_plan(seed: int = 0, delay_seconds: float = 0.05) -> FaultPlan:
    """Every scan responds slowly (virtual latency, eats deadline budget)."""
    return FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(
                op="scan", kind="slow", probability=1.0,
                delay_seconds=delay_seconds,
            ),
        ),
    )


def crash_point_plan(at: int, seed: int = 0) -> FaultPlan:
    """Kill the process at exactly operation index *at*.

    The crash-recovery harness sweeps *at* across a run's whole
    operation count: one plan per index, each killing the run at a
    different persistence boundary.
    """
    return FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(
                op="*", kind="crash", probability=1.0,
                start_after=at, stop_after=at + 1,
            ),
        ),
    )


def worker_kill_plan(at: int = 3, seed: int = 0) -> FaultPlan:
    """SIGKILL the serving worker handling dispatch index *at*.

    Consulted only at the process-pool ``dispatch`` boundary: dispatch
    *at* raises :class:`~repro.hbase.errors.WorkerKilledError`, the
    frontend kills + respawns the target worker, and every request —
    including the one that triggered the kill — must still complete.
    """
    return FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(
                op="dispatch", kind="kill", probability=1.0,
                start_after=at, stop_after=at + 1, scope="op",
            ),
        ),
    )


def replica_kill_plan(server_id: int = 1, at: int = 0, seed: int = 0) -> FaultPlan:
    """Kill region server *server_id* permanently from operation *at* on.

    Against a replicated cluster (``replication >= 2``) this takes one
    *replica* of every region down for good; reads routed to it must
    fail over to a surviving host with zero result drift — the property
    the sharding chaos regression asserts via the
    ``hbase_replica_read_fallbacks_total`` counter and
    ``SubmissionResult.degraded`` staying false.
    """
    return FaultPlan(
        seed=seed,
        crashes=(ServerCrash(server_id=server_id, crash_at=at, downtime=None),),
    )


def rolling_restart_plan(
    seed: int = 0,
    period: int = 50,
    downtime: int = 10,
    restarts: int = 5,
    server_id: int = 0,
) -> FaultPlan:
    """Server *server_id* crashes every *period* ops for *downtime* ops."""
    crashes = tuple(
        ServerCrash(
            server_id=server_id, crash_at=period * (k + 1), downtime=downtime
        )
        for k in range(restarts)
    )
    return FaultPlan(seed=seed, crashes=crashes)


#: name -> factory taking (seed, optional numeric argument).
PRESETS = {
    "flaky": lambda seed, arg: flaky_plan(
        seed, probability=0.2 if arg is None else arg
    ),
    "outage": lambda seed, arg: outage_plan(seed),
    "slow": lambda seed, arg: slow_plan(
        seed, delay_seconds=0.05 if arg is None else arg
    ),
    "rolling-restart": lambda seed, arg: rolling_restart_plan(
        seed, period=50 if arg is None else int(arg)
    ),
    "crash-point": lambda seed, arg: crash_point_plan(
        at=0 if arg is None else int(arg), seed=seed
    ),
    "worker-kill": lambda seed, arg: worker_kill_plan(
        at=3 if arg is None else int(arg), seed=seed
    ),
    "replica-kill": lambda seed, arg: replica_kill_plan(
        server_id=1 if arg is None else int(arg), seed=seed
    ),
}


def plan_from_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Resolve a CLI ``--chaos`` spec to a plan.

    *spec* is either a path to a JSON plan document (anything containing
    a path separator or ending in ``.json``) or a preset name with an
    optional numeric argument: ``flaky``, ``flaky:0.5``, ``outage``,
    ``slow:0.2``, ``rolling-restart:100``, ``crash-point:37``.
    """
    if spec.endswith(".json") or "/" in spec:
        return FaultPlan.from_json(Path(spec).read_text())
    name, __, arg_text = spec.partition(":")
    factory = PRESETS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown chaos preset {name!r}; "
            f"available: {', '.join(sorted(PRESETS))} (or a JSON plan path)"
        )
    arg = float(arg_text) if arg_text else None
    return factory(seed, arg)
