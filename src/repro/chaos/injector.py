"""The fault injector: a plan's runtime, consulted at op boundaries.

The HBase substrate calls :meth:`FaultInjector.on_operation` once per
client-visible operation (``put``/``get`` per cell, ``scan`` per region
scan).  The injector walks the plan deterministically — crash windows
first (pure op-index arithmetic), then probabilistic specs in plan order
against a seeded RNG — and either returns, advances its virtual clock
(slow responses), or raises one of the retryable substrate errors.

Every consult and every injected fault is counted through the
observability registry, so a chaos run's blast radius shows up in the
same export as the retries and fallbacks it provoked.
"""

from __future__ import annotations

import random

from ..hbase.errors import (
    ServerUnavailableError,
    SimulatedCrashError,
    TransientError,
    WorkerKilledError,
)
from ..observability import LATENCY_BUCKETS, MetricsRegistry, get_registry
from .plan import FaultPlan
from .retry import VirtualClock

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runtime for one :class:`~repro.chaos.plan.FaultPlan`.

    Attributes:
        plan: the schedule being executed.
        clock: virtual clock advanced by injected slow responses; share
            it with a retry layer so slowness consumes deadline budget.
        injected: ``{(op, kind): count}`` of faults injected so far.
    """

    def __init__(
        self, plan: FaultPlan, registry: MetricsRegistry | None = None
    ) -> None:
        self.plan = plan
        #: Observability sink; None falls back to the module default.
        self.registry = registry
        self.clock = VirtualClock()
        self.injected: dict[tuple[str, str], int] = {}
        self._rng = random.Random(plan.seed)
        self._op_index = 0
        self._op_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def operations_seen(self) -> int:
        return self._op_index

    def reset(self) -> None:
        """Rewind to the plan's initial state (same seed, op 0)."""
        self._rng = random.Random(self.plan.seed)
        self._op_index = 0
        self._op_counts = {}
        self.clock = VirtualClock()
        self.injected.clear()

    def summary(self) -> dict[str, int]:
        """Injected fault counts as ``{"op/kind": count}``, sorted."""
        return {
            f"{op}/{kind}": count
            for (op, kind), count in sorted(self.injected.items())
        }

    def _record(self, op: str, kind: str) -> None:
        self.injected[(op, kind)] = self.injected.get((op, kind), 0) + 1
        get_registry(self.registry).counter(
            "chaos_faults_injected_total",
            "faults injected into the HBase substrate",
            labels={"op": op, "kind": kind},
        ).inc()

    # ------------------------------------------------------------------
    def on_operation(self, op: str, server_id: int | None = None) -> None:
        """Consult the plan for one substrate operation.

        Raises:
            TransientError: a ``transient`` spec fired.
            ServerUnavailableError: an ``unavailable`` spec fired or the
                target server is inside a crash window.
            SimulatedCrashError: a ``crash`` spec fired — a process
                kill, deliberately not retryable.
            WorkerKilledError: a ``kill`` spec fired at a ``dispatch``
                boundary — the process-pool frontend must SIGKILL and
                respawn the target worker.
        """
        index = self._op_index
        self._op_index += 1
        op_index = self._op_counts.get(op, 0)
        self._op_counts[op] = op_index + 1
        registry = get_registry(self.registry)
        registry.counter(
            "chaos_operations_total",
            "substrate operations checked by the fault injector",
            labels={"op": op},
        ).inc()

        for crash in self.plan.crashes:
            if crash.covers(server_id, index):
                self._record(op, "crash")
                raise ServerUnavailableError(
                    f"region server {crash.server_id} is down "
                    f"(crash window at op #{index})"
                )

        for spec in self.plan.faults:
            if not spec.applies(op, server_id, index, op_index=op_index):
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            if spec.kind == "slow":
                self.clock.advance(spec.delay_seconds)
                self._record(op, "slow")
                registry.histogram(
                    "chaos_injected_delay_seconds",
                    "virtual latency added by injected slow responses",
                    buckets=LATENCY_BUCKETS,
                ).observe(spec.delay_seconds)
                continue
            self._record(op, spec.kind)
            if spec.kind == "crash":
                # A process kill, not a request failure: the retry layer
                # must NOT swallow this — recovery means reopening the
                # store from its on-disk state.
                raise SimulatedCrashError(
                    f"simulated process kill at {op} (op #{index})"
                )
            if spec.kind == "kill":
                # A serving-worker SIGKILL: the frontend respawns the
                # worker and re-dispatches; nothing below retries this.
                raise WorkerKilledError(
                    f"injected worker kill at {op} (op #{index})"
                )
            if spec.kind == "transient":
                raise TransientError(
                    f"injected transient {op} failure (op #{index})"
                )
            raise ServerUnavailableError(
                f"injected {op} unavailability (op #{index})"
            )
