"""Retry with exponential backoff and deadline budgets.

The serving-path counterpart of the scheduler's re-execution machinery:
a store operation that hits a retryable substrate error
(:data:`repro.hbase.errors.RETRYABLE_ERRORS`) is retried under a
:class:`RetryPolicy` until it succeeds, the attempt budget runs out, or
the deadline budget would be exceeded — at which point
:class:`StoreUnavailableError` surfaces so callers can degrade instead
of crash.

Backoff time lives on a :class:`VirtualClock` by default: delays are
*modelled*, not slept, which keeps chaos tests fast and — because the
schedule is deterministic (no jitter) — bit-reproducible.  A wall-clock
deployment would pass ``clock=time.monotonic`` and ``sleep=time.sleep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from ..hbase.errors import RETRYABLE_ERRORS, HBaseError
from ..observability import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "VirtualClock",
    "RetryPolicy",
    "StoreUnavailableError",
    "call_with_retry",
]

_T = TypeVar("_T")


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt, backoff, and deadline budgets for one logical operation.

    Attributes:
        max_attempts: total tries (first call included).
        base_delay: backoff before the second attempt (seconds).
        multiplier: exponential growth factor per retry.
        max_delay: per-retry backoff ceiling.
        deadline_seconds: total budget (elapsed clock time plus the next
            backoff may never exceed it); the last line of defence
            against retry storms under long outages.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    deadline_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.deadline_seconds <= 0:
            raise ValueError("deadline must be positive")

    def backoff(self, retry_index: int) -> float:
        """Delay before retry number *retry_index* (0-based).

        Deterministic (no jitter) so seeded chaos runs reproduce; a
        multi-client deployment would add jitter here.
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return min(self.max_delay, self.base_delay * self.multiplier ** retry_index)


class StoreUnavailableError(HBaseError):
    """A store operation exhausted its retry/deadline budget.

    Carries the failed operation, how many attempts were made, the clock
    time burned, and the last substrate error (also chained as
    ``__cause__``).  Deliberately *not* in :data:`RETRYABLE_ERRORS`:
    when this surfaces, the caller's next move is degradation, not
    another retry loop.
    """

    def __init__(
        self,
        op: str,
        attempts: int,
        elapsed_seconds: float,
        last_error: BaseException | None = None,
    ) -> None:
        super().__init__(
            f"store operation {op!r} failed after {attempts} attempt(s) "
            f"({elapsed_seconds:.3f}s of budget): {last_error}"
        )
        self.op = op
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds
        self.last_error = last_error


def call_with_retry(
    fn: Callable[[], _T],
    policy: RetryPolicy,
    clock: VirtualClock | Any,
    op: str = "call",
    registry: MetricsRegistry | None = None,
    sleep: Callable[[float], None] | None = None,
) -> _T:
    """Run *fn* under *policy*, retrying retryable substrate errors.

    Args:
        clock: anything with ``now() -> float``; the deadline is charged
            against it (share the injector's clock so injected slow
            responses consume budget).
        sleep: how to wait out a backoff; defaults to ``clock.advance``
            (virtual time) when available, else a no-op.

    Raises:
        StoreUnavailableError: budgets exhausted; the last error chains.
    """
    registry = get_registry(registry)
    if sleep is None:
        advance = getattr(clock, "advance", None)
        sleep = advance if callable(advance) else (lambda seconds: None)
    started = clock.now()
    attempt = 0
    while True:
        try:
            return fn()
        except RETRYABLE_ERRORS as exc:
            attempt += 1
            registry.counter(
                "pstorm_store_retryable_errors_total",
                "retryable substrate errors seen by the resilient client",
                labels={"op": op},
            ).inc()
            delay = policy.backoff(attempt - 1)
            elapsed = clock.now() - started
            if attempt >= policy.max_attempts or (
                elapsed + delay > policy.deadline_seconds
            ):
                registry.counter(
                    "pstorm_store_giveups_total",
                    "store operations that exhausted their retry budget",
                    labels={"op": op},
                ).inc()
                raise StoreUnavailableError(
                    op=op,
                    attempts=attempt,
                    elapsed_seconds=elapsed,
                    last_error=exc,
                ) from exc
            registry.counter(
                "pstorm_store_retries_total",
                "retries issued by the resilient store client",
                labels={"op": op},
            ).inc()
            registry.histogram(
                "pstorm_store_retry_backoff_seconds",
                "backoff delays scheduled between store retries",
                buckets=LATENCY_BUCKETS,
            ).observe(delay)
            sleep(delay)
