"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [NAME ...]`` — regenerate the paper's tables/figures
  (default: all of them) and print the result tables.
- ``demo`` — the tune-a-never-seen-job walkthrough (Fig 1.3 scenario).
- ``explain JOB_A JOB_B`` — a PerfXplain query over a freshly profiled
  mini-log of the named benchmark jobs.
- ``list-jobs`` — the Table 6.1 benchmark inventory.
- ``metrics`` — run a small smoke workload through the whole stack and
  print the collected metrics in Prometheus text format.
- ``loadgen`` — replay seeded synthetic tenant traffic against the
  tuning service as a discrete-event simulation; the summary JSON on
  stdout is byte-identical for the same seed (see ``docs/serving.md``).
- ``serve`` — drive the real thread-pool frontend end to end (queues,
  futures, clean shutdown); exits nonzero if a worker hangs.
- ``league`` — race the tuner family (RBO, CBO, SPSA, surrogate,
  ensemble) across the workload zoo under one seed and print the
  leaderboard JSON (byte-identical per seed; see ``docs/tuning.md``).
- ``snapshot --data-dir DIR`` — open (or restore) a durable profile
  store rooted at DIR and checkpoint it: flush every region's memstore
  to SSTables and write ``index_checkpoint.json`` so the next restore
  serves its first probe without an index rebuild (see
  ``docs/durability.md``).  ``--populate N`` writes N synthetic
  profiles first, making a create→snapshot→restore round trip
  self-contained.
- ``compact --data-dir DIR`` — force a full compaction of every region
  store under DIR: merges each store's tables into one deep run and
  rewrites them in the current binary block-sharded SSTable format
  (migrating any legacy ``sst_*.json`` tables), then prints per-level
  table/block counts and the on-disk format tally as JSON.

``demo`` and ``serve`` accept ``--data-dir DIR`` to run over a durable
(restorable) profile store instead of the in-memory default.

``demo``, ``experiments``, and ``metrics`` accept ``--emit-metrics PATH``
to dump the collected metrics and completed spans as JSON (see
``docs/observability.md``), and ``--chaos SPEC`` to run the whole
workload under injected store faults — a preset (``flaky[:p]``,
``outage``, ``slow[:delay]``, ``rolling-restart[:period]``) or a JSON
fault-plan path (see ``docs/resilience.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

__all__ = ["main", "build_parser"]


def _experiment_registry() -> dict[str, Callable]:
    from .experiments import (
        ablations, adoption, dataflow_similarity, fig1_3, fig4_1, fig4_3, fig4_5, fig4_6,
        fig6_1, fig6_2, fig6_3, table6_1,
    )

    return {
        "adoption": adoption.run,
        "dataflow-similarity": dataflow_similarity.run,
        "table6_1": table6_1.run,
        "fig1_3": fig1_3.run,
        "fig4_1": fig4_1.run,
        "fig4_3": fig4_3.run,
        "fig4_5": fig4_5.run,
        "fig4_6": fig4_6.run,
        "fig6_1": fig6_1.run,
        "fig6_2": fig6_2.run,
        "fig6_3": fig6_3.run,
        "pushdown": ablations.run_pushdown,
        "store-models": ablations.run_store_models,
        "param-features": ablations.run_param_features,
        "thresholds": ablations.run_threshold_sensitivity,
        "cluster-transfer": ablations.run_cluster_transfer,
        "gbrt-weights": ablations.run_gbrt_weights,
        "filter-order": ablations.run_filter_order,
        "store-scalability": ablations.run_store_scalability,
        "cfg-cost": ablations.run_cfg_cost_correlation,
    }


def _maybe_enable_chaos(args: argparse.Namespace):
    """Install the process-default fault injector when --chaos is set.

    Every HBase substrate built afterwards — including the stores the
    experiment drivers create internally — consults the injector, so one
    flag puts a whole suite under faults.  Returns the injector or None.
    """
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    from .chaos import FaultInjector, plan_from_spec, set_default_injector

    injector = FaultInjector(plan_from_spec(spec, seed=args.seed))
    set_default_injector(injector)
    print(f"chaos enabled: {spec} (seed {args.seed})", file=sys.stderr)
    return injector


def _report_chaos(injector) -> None:
    """Print the injected-fault tally after a chaos run."""
    if injector is None:
        return
    summary = injector.summary()
    if not summary:
        print(
            f"chaos: no faults injected over "
            f"{injector.operations_seen} operations",
            file=sys.stderr,
        )
        return
    tally = ", ".join(f"{key} x{count}" for key, count in summary.items())
    print(
        f"chaos: injected {tally} over {injector.operations_seen} operations",
        file=sys.stderr,
    )


def _maybe_emit_metrics(args: argparse.Namespace) -> None:
    """Dump the default registry/tracer snapshot when --emit-metrics is set."""
    path = getattr(args, "emit_metrics", None)
    if not path:
        return
    from .observability import export

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export.to_json())
        handle.write("\n")
    print(f"metrics written to {path}", file=sys.stderr)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentContext, collect_suite

    registry = _experiment_registry()
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2

    injector = _maybe_enable_chaos(args)
    ctx = ExperimentContext.create(args.seed, workers=getattr(args, "workers", 1))
    needs_suite = {"fig6_1", "fig6_2", "fig6_3", "pushdown",
                   "store-models", "thresholds", "gbrt-weights", "filter-order",
                   "store-scalability", "cfg-cost"}
    records = None
    if needs_suite & set(names):
        print("profiling the benchmark suite...", file=sys.stderr)
        records = collect_suite(ctx, seed=args.seed)
    for name in names:
        run = registry[name]
        if name in needs_suite:
            result = run(ctx, records, seed=args.seed)
        else:
            result = run(ctx, seed=args.seed)
        print(result)
        print()
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_list_jobs(args: argparse.Namespace) -> int:
    from .workloads import standard_benchmark

    for entry in standard_benchmark():
        print(
            f"{entry.job.name:<28} {entry.domain:<28} {entry.dataset.name:<18} "
            f"{entry.dataset.num_splits:>4} splits"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .chaos import StoreUnavailableError
    from .core import PStorM
    from .hadoop import HadoopEngine, JobConfiguration, ec2_cluster
    from .workloads import (
        bigram_relative_frequency_job,
        cooccurrence_pairs_job,
        wikipedia_35gb,
    )

    injector = _maybe_enable_chaos(args)
    engine = HadoopEngine(ec2_cluster())
    tuner = getattr(args, "tuner", "cbo")
    if getattr(args, "data_dir", None):
        from .core.store import ProfileStore

        pstorm = PStorM(
            engine, store=ProfileStore(data_dir=args.data_dir), tuner=tuner
        )
    else:
        pstorm = PStorM(engine, tuner=tuner)
    wiki = wikipedia_35gb()

    print("storing the bigram relative frequency job's profile...")
    try:
        pstorm.remember(bigram_relative_frequency_job(), wiki, seed=args.seed)
    except StoreUnavailableError as exc:
        print(f"store write failed under chaos, continuing: {exc}", file=sys.stderr)

    unseen = cooccurrence_pairs_job()
    print(f"submitting never-seen job {unseen.name!r}...")
    result = pstorm.submit(unseen, wiki, seed=args.seed)
    default = engine.run_job(unseen, wiki, JobConfiguration(), seed=args.seed)
    print(f"matched: {result.matched} via {result.outcome.map_match.stage}")
    if result.degraded:
        print(f"degraded: {result.degradation_reason} "
              f"-> fallback {result.fallback_path}")
    print(f"default:      {default.runtime_seconds / 60:7.1f} min")
    print(f"PStorM-tuned: {result.runtime_seconds / 60:7.1f} min "
          f"({default.runtime_seconds / result.runtime_seconds:.2f}x)")
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Exercise every instrumented layer once, then render the metrics."""
    from .chaos import StoreUnavailableError
    from .core import PStorM
    from .hadoop import (
        Dataset,
        FunctionRecordSource,
        HadoopEngine,
        MapReduceJob,
        ec2_cluster,
    )
    from .observability import export

    def lines(split_index, rng):
        words = [f"word{i:02d}" for i in range(30)]
        return [
            (i, " ".join(words[int(rng.integers(0, 30))] for __ in range(8)))
            for i in range(80)
        ]

    def wc_map(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def wc_reduce(word, counts, ctx):
        total = 0
        for count in counts:
            total += count
            ctx.report_ops(1)
        ctx.emit(word, total)

    dataset = Dataset(
        "metrics-smoke",
        nominal_bytes=128 << 20,
        source=FunctionRecordSource(lines),
        seed=7,
    )
    job = MapReduceJob(
        name="metrics-wordcount", mapper=wc_map, reducer=wc_reduce,
        combiner=wc_reduce,
    )
    injector = _maybe_enable_chaos(args)
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine, seed=args.seed)
    print("running the smoke workload...", file=sys.stderr)
    try:
        pstorm.remember(job, dataset, seed=args.seed)
    except StoreUnavailableError as exc:
        print(f"store write failed under chaos, continuing: {exc}", file=sys.stderr)
    pstorm.submit(job, dataset, seed=args.seed)
    print(export.to_prometheus(), end="")
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay a seeded load run; the summary JSON on stdout is the
    deliverable (status chatter goes to stderr) so CI can compare two
    same-seed runs byte for byte."""
    from .serving import LoadConfig, run_load

    injector = _maybe_enable_chaos(args)
    config = LoadConfig(
        requests=args.requests,
        workers=args.workers,
        seed=args.seed,
        mode=args.mode,
        arrival_rate=args.arrival_rate,
        clients=args.clients,
        think_seconds=args.think_seconds,
        remember_every=args.remember_every,
        queue_capacity=args.queue_capacity,
        shed_watermark=args.shed_watermark,
        cache_capacity=args.cache_capacity,
        store_capacity=args.store_capacity,
        backend=args.backend,
        gil_fraction=args.gil_fraction,
        batch_window_seconds=args.batch_window,
        batch_max=args.batch_max,
        num_region_servers=args.region_servers,
        replication=args.replication,
        split_threshold=args.split_threshold,
        shard_index=args.shard_index,
        probe_workers=args.probe_workers,
        tuner=args.tuner,
    )
    print(
        f"replaying {config.requests} requests "
        f"({config.mode} loop, {config.workers} {config.backend} workers, "
        f"seed {config.seed})...",
        file=sys.stderr,
    )
    report = run_load(config)
    print(report.to_json())
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the thread-pool frontend end to end: start the worker pool,
    drive seeded traffic through real queues, stop cleanly.

    Unlike ``loadgen`` (a simulation, byte-deterministic), this exercises
    true concurrency — the summary counts are stable but latencies are
    wall-clock.  Exits nonzero if any worker fails to join.
    """
    import random as _random

    from .serving import (
        ServiceConfig,
        ServiceOverloadError,
        TuningService,
        default_tenants,
    )
    from .serving.loadgen import loadgen_zoo

    injector = _maybe_enable_chaos(args)
    tenants = default_tenants()
    service = TuningService(
        config=ServiceConfig(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            shed_watermark=args.shed_watermark,
            tenant_policies={t.name: t.policy for t in tenants},
            backend=args.backend,
            batch_window_seconds=args.batch_window,
            batch_max=args.batch_max,
            num_region_servers=args.region_servers,
            replication=args.replication,
            split_threshold=args.split_threshold,
            shard_index=args.shard_index,
            probe_workers=args.probe_workers,
            tuner=args.tuner,
        ),
        seed=args.seed,
        data_dir=getattr(args, "data_dir", None) or None,
    )
    rng = _random.Random(args.seed)
    zoo = loadgen_zoo()
    names = [t.name for t in tenants]
    weights = [t.weight for t in tenants]
    service.start()
    print(
        f"serving {args.requests} requests on {args.workers} "
        f"{args.backend} workers...",
        file=sys.stderr,
    )
    futures = []
    shed = 0
    for __ in range(args.requests):
        job, dataset = zoo[rng.randrange(len(zoo))]
        tenant = rng.choices(names, weights=weights)[0]
        try:
            futures.append(
                service.submit_request(job, dataset, tenant=tenant, seed=args.seed)
            )
        except ServiceOverloadError as exc:
            shed += 1
            print(
                f"shed ({exc.reason}): retry after {exc.retry_after_seconds:.2f}s",
                file=sys.stderr,
            )
    responses = [f.result(timeout=args.timeout) for f in futures]
    clean = service.stop(timeout=args.timeout)
    ok = sum(1 for r in responses if r.ok)
    hits = sum(1 for r in responses if r.cache_hit)
    degraded = sum(1 for r in responses if r.degraded)
    summary = {
        "backend": args.backend,
        "cache_hits": hits,
        "degraded": degraded,
        "hung_workers": service.hung_workers,
        "ok": ok,
        "requests": args.requests,
        "served": len(responses),
        "shed": shed,
    }
    print(json.dumps(summary, sort_keys=True, indent=2))
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    if not clean:
        print(
            f"ERROR: {service.hung_workers} worker(s) failed to join",
            file=sys.stderr,
        )
        return 1
    return 0


def _synthetic_job(index: int):
    """One synthetic (profile, static-features) pair for ``snapshot
    --populate`` — self-contained store contents without running jobs."""
    from .analysis.cfg import ControlFlowGraph
    from .analysis.static_features import STATIC_FEATURE_NAMES, StaticFeatures
    from .starfish.profile import (
        MAP_COST_FEATURES,
        MAP_DATA_FLOW_FEATURES,
        REDUCE_COST_FEATURES,
        REDUCE_DATA_FLOW_FEATURES,
        JobProfile,
        SideProfile,
    )

    def body(x):
        return x + 1

    map_profile = SideProfile(
        side="map",
        data_flow={
            name: 0.1 * (index + 1) + 0.01 * pos
            for pos, name in enumerate(MAP_DATA_FLOW_FEATURES)
        },
        cost_factors={
            name: float(pos + 1) for pos, name in enumerate(MAP_COST_FEATURES)
        },
        statistics={},
        phase_times={},
        num_tasks=2,
    )
    reduce_profile = SideProfile(
        side="reduce",
        data_flow={
            name: 0.5 + 0.1 * pos
            for pos, name in enumerate(REDUCE_DATA_FLOW_FEATURES)
        },
        cost_factors={
            name: float(pos + 1) for pos, name in enumerate(REDUCE_COST_FEATURES)
        },
        statistics={},
        phase_times={},
        num_tasks=1,
    )
    profile = JobProfile(
        job_name=f"synthetic{index}",
        dataset_name="synthetic",
        input_bytes=(index + 1) << 20,
        split_bytes=128 << 20,
        num_map_tasks=2,
        num_reduce_tasks=1,
        map_profile=map_profile,
        reduce_profile=reduce_profile,
    )
    cfg = ControlFlowGraph.from_callable(body)
    categorical = {
        name: f"v{index % 2}"
        for name in STATIC_FEATURE_NAMES
        if name not in ("MAP_CFG", "RED_CFG")
    }
    static = StaticFeatures(categorical=categorical, map_cfg=cfg, reduce_cfg=cfg)
    return profile, static


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Open-or-restore a durable store, optionally populate, checkpoint.

    The summary JSON on stdout reports how many jobs were *restored*
    from disk and whether the index came back from the checkpoint
    without a rebuild, so running this twice on the same directory is a
    complete durability round-trip check.
    """
    from .core.store import ProfileStore
    from .observability import MetricsRegistry

    registry = MetricsRegistry()
    store = ProfileStore(data_dir=args.data_dir, registry=registry)
    restored_jobs = len(store)
    for offset in range(args.populate):
        number = restored_jobs + offset
        profile, static = _synthetic_job(number)
        store.put(profile, static, job_id=f"synthetic-{number}@cli")
    index = store.match_index()
    if index is not None:
        index.ensure_fresh()
    path = store.snapshot()

    def metric(name: str) -> int:
        instrument = registry.get(name)
        return 0 if instrument is None else int(instrument.value)

    summary = {
        "checkpoint": str(path),
        "generation": store.generation,
        "index_checkpoint_loads": metric(
            "pstorm_match_index_checkpoint_loads_total"
        ),
        "index_rebuilds": metric("pstorm_matcher_index_rebuilds_total"),
        "jobs": len(store),
        "restored_jobs": restored_jobs,
        "restores": metric("snapshot_restores_total"),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """Force-compact a durable store and print its resulting layout.

    The summary JSON reports how many regions were compacted, how many
    legacy JSON tables were migrated to binary blocks, and the
    per-level table/block counts afterwards — so a migration run is
    verifiable from stdout alone (the CI smoke asserts on it).
    """
    from .core.store import ProfileStore
    from .observability import MetricsRegistry

    registry = MetricsRegistry()
    store = ProfileStore(data_dir=args.data_dir, registry=registry)
    summary = store.compact(force=True)
    summary["jobs"] = len(store)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_league(args: argparse.Namespace) -> int:
    """Race the tuner family across the workload zoo.

    The leaderboard JSON on stdout is byte-identical for the same seed
    and roster (status chatter goes to stderr), so the CI smoke can
    assert well-formedness and compare re-runs byte for byte.
    """
    from .tuners import TUNER_NAMES
    from .tuners.league import LeagueConfig, leaderboard_json, run_league

    roster = (
        tuple(name.strip() for name in args.tuners.split(",") if name.strip())
        if args.tuners
        else TUNER_NAMES
    )
    try:
        config = LeagueConfig(
            seed=args.seed,
            tuners=roster,
            workers=args.workers,
            quick=args.quick,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"racing {', '.join(roster)} "
        f"({'quick' if args.quick else 'full'} mode, seed {config.seed})...",
        file=sys.stderr,
    )
    rendered = leaderboard_json(run_league(config))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"leaderboard written to {args.out}", file=sys.stderr)
    print(rendered, end="")
    _maybe_emit_metrics(args)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentContext
    from .perfxplain import ExecutionLog, PerfQuery, PerfXplain
    from .workloads import standard_benchmark

    wanted = {args.job_a, args.job_b}
    ctx = ExperimentContext.create(args.seed)
    log = ExecutionLog()
    for entry in standard_benchmark(pigmix_queries=2):
        profile, execution = ctx.profiler.profile_job(
            entry.job, entry.dataset, seed=args.seed
        )
        log.add_execution(profile, execution)
    missing = wanted - set(log.keys())
    if missing:
        print(f"unknown jobs: {', '.join(sorted(missing))}", file=sys.stderr)
        print("known:", file=sys.stderr)
        for key in log.keys():
            print(f"  {key}", file=sys.stderr)
        return 2

    explainer = PerfXplain(log)
    query = PerfQuery(args.job_a, args.job_b, expected=args.expected)
    print(explainer.explain(query).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PStorM reproduction: experiments, demos, explanations.",
    )
    parser.add_argument("--seed", type=int, default=0, help="global RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_emit_metrics(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--emit-metrics",
            metavar="PATH",
            default=None,
            help="write collected metrics and spans to PATH as JSON",
        )

    def add_seed(subparser: argparse.ArgumentParser) -> None:
        # Also accepted after the verb (``repro loadgen --seed 7``);
        # SUPPRESS keeps the global default when the verb omits it.
        subparser.add_argument(
            "--seed", type=int, default=argparse.SUPPRESS, help="RNG seed"
        )

    def add_sharding(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--region-servers",
            type=int,
            default=1,
            metavar="N",
            help="region servers hosting the profile store (default: 1)",
        )
        subparser.add_argument(
            "--replication",
            type=int,
            default=1,
            metavar="R",
            help="read replicas per region, clamped to the server count",
        )
        subparser.add_argument(
            "--split-threshold",
            type=int,
            default=None,
            metavar="ROWS",
            help="rows per region before it splits (default: substrate)",
        )
        subparser.add_argument(
            "--shard-index",
            action="store_true",
            help="probe per-region match-index partitions (scatter-gather)",
        )
        subparser.add_argument(
            "--probe-workers",
            type=int,
            default=1,
            metavar="N",
            help=(
                "threads fanning out a sharded probe's partition scans "
                "(bit-identical at any width; default: 1)"
            ),
        )

    def add_tuner(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--tuner",
            choices=("rbo", "cbo", "spsa", "surrogate", "ensemble"),
            default="cbo",
            help="hit-path optimizer (default: cbo, the paper's workflow)",
        )

    def add_chaos(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--chaos",
            metavar="SPEC",
            default=None,
            help=(
                "inject store faults: a preset (flaky[:p], outage, "
                "slow[:delay], rolling-restart[:period], "
                "replica-kill[:server]) or a JSON fault-plan path"
            ),
        )

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="experiment names (default: all)")
    experiments.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads for independent (job, dataset) cells (default: 1)",
    )
    add_emit_metrics(experiments)
    add_chaos(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    list_jobs = commands.add_parser("list-jobs", help="the Table 6.1 inventory")
    list_jobs.set_defaults(handler=_cmd_list_jobs)

    def add_data_dir(subparser: argparse.ArgumentParser, required: bool = False) -> None:
        subparser.add_argument(
            "--data-dir",
            metavar="DIR",
            default=None,
            required=required,
            help="durable profile-store root (restored if it has state)",
        )

    demo = commands.add_parser("demo", help="tune a never-seen job via PStorM")
    add_tuner(demo)
    add_emit_metrics(demo)
    add_chaos(demo)
    add_data_dir(demo)
    demo.set_defaults(handler=_cmd_demo)

    snapshot = commands.add_parser(
        "snapshot",
        help="checkpoint (and optionally populate) a durable profile store",
    )
    add_data_dir(snapshot, required=True)
    snapshot.add_argument(
        "--populate",
        type=int,
        default=0,
        metavar="N",
        help="write N synthetic profiles before checkpointing",
    )
    snapshot.set_defaults(handler=_cmd_snapshot)

    compact = commands.add_parser(
        "compact",
        help="fully compact a durable store (migrates legacy JSON SSTables)",
    )
    add_data_dir(compact, required=True)
    compact.set_defaults(handler=_cmd_compact)

    metrics = commands.add_parser(
        "metrics", help="run a smoke workload and print Prometheus-format metrics"
    )
    add_emit_metrics(metrics)
    add_chaos(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    loadgen = commands.add_parser(
        "loadgen",
        help="replay deterministic synthetic load against the tuning service",
    )
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--workers", type=int, default=4)
    loadgen.add_argument("--mode", choices=("open", "closed"), default="open")
    loadgen.add_argument(
        "--arrival-rate",
        type=float,
        default=1.0,
        help="open-loop arrivals per simulated second",
    )
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--think-seconds", type=float, default=20.0)
    loadgen.add_argument(
        "--remember-every",
        type=int,
        default=25,
        help="every Nth arrival is a remember() write (0 disables)",
    )
    loadgen.add_argument("--queue-capacity", type=int, default=16)
    loadgen.add_argument("--shed-watermark", type=int, default=12)
    loadgen.add_argument("--cache-capacity", type=int, default=64)
    loadgen.add_argument(
        "--store-capacity",
        type=int,
        default=None,
        help="bound the shared store (MaintainedStore) to N profiles",
    )
    loadgen.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="simulated concurrency cost model",
    )
    loadgen.add_argument(
        "--gil-fraction",
        type=float,
        default=0.0,
        help="threads backend: fraction of service time serialized on the GIL",
    )
    loadgen.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        help="processes backend, open mode: coalescing window (sim seconds)",
    )
    loadgen.add_argument("--batch-max", type=int, default=8)
    add_sharding(loadgen)
    add_tuner(loadgen)
    add_seed(loadgen)
    add_emit_metrics(loadgen)
    add_chaos(loadgen)
    loadgen.set_defaults(handler=_cmd_loadgen)

    serve = commands.add_parser(
        "serve", help="run the real tuning-service frontend end to end"
    )
    serve.add_argument("--requests", type=int, default=40)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-capacity", type=int, default=32)
    serve.add_argument("--shed-watermark", type=int, default=None, dest="shed_watermark")
    serve.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="worker threads, or worker processes over the shared-memory index",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        help="processes backend: dispatcher coalescing window (wall seconds)",
    )
    serve.add_argument("--batch-max", type=int, default=8)
    serve.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-future and shutdown timeout (wall seconds)",
    )
    add_sharding(serve)
    add_tuner(serve)
    add_seed(serve)
    add_emit_metrics(serve)
    add_chaos(serve)
    add_data_dir(serve)
    serve.set_defaults(handler=_cmd_serve)

    league = commands.add_parser(
        "league", help="race the tuner family on a seeded leaderboard"
    )
    league.add_argument(
        "--quick",
        action="store_true",
        help="first-per-family workloads and reduced search budgets",
    )
    league.add_argument(
        "--tuners",
        default=None,
        metavar="A,B,...",
        help="comma-separated roster (default: rbo,cbo,spsa,surrogate,ensemble)",
    )
    league.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads for race cells (never changes the payload)",
    )
    league.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the leaderboard JSON to PATH",
    )
    add_seed(league)
    add_emit_metrics(league)
    league.set_defaults(handler=_cmd_league)

    explain = commands.add_parser("explain", help="PerfXplain a job pair")
    explain.add_argument("job_a", help="reference job key, e.g. word-count@wikipedia-35gb")
    explain.add_argument("job_b", help="surprising job key")
    explain.add_argument(
        "--expected", default="similar", choices=("similar", "slower", "faster")
    )
    explain.set_defaults(handler=_cmd_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
