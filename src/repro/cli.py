"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [NAME ...]`` — regenerate the paper's tables/figures
  (default: all of them) and print the result tables.
- ``demo`` — the tune-a-never-seen-job walkthrough (Fig 1.3 scenario).
- ``explain JOB_A JOB_B`` — a PerfXplain query over a freshly profiled
  mini-log of the named benchmark jobs.
- ``list-jobs`` — the Table 6.1 benchmark inventory.
- ``metrics`` — run a small smoke workload through the whole stack and
  print the collected metrics in Prometheus text format.

``demo``, ``experiments``, and ``metrics`` accept ``--emit-metrics PATH``
to dump the collected metrics and completed spans as JSON (see
``docs/observability.md``), and ``--chaos SPEC`` to run the whole
workload under injected store faults — a preset (``flaky[:p]``,
``outage``, ``slow[:delay]``, ``rolling-restart[:period]``) or a JSON
fault-plan path (see ``docs/resilience.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

__all__ = ["main", "build_parser"]


def _experiment_registry() -> dict[str, Callable]:
    from .experiments import (
        ablations, adoption, dataflow_similarity, fig1_3, fig4_1, fig4_3, fig4_5, fig4_6,
        fig6_1, fig6_2, fig6_3, table6_1,
    )

    return {
        "adoption": adoption.run,
        "dataflow-similarity": dataflow_similarity.run,
        "table6_1": table6_1.run,
        "fig1_3": fig1_3.run,
        "fig4_1": fig4_1.run,
        "fig4_3": fig4_3.run,
        "fig4_5": fig4_5.run,
        "fig4_6": fig4_6.run,
        "fig6_1": fig6_1.run,
        "fig6_2": fig6_2.run,
        "fig6_3": fig6_3.run,
        "pushdown": ablations.run_pushdown,
        "store-models": ablations.run_store_models,
        "param-features": ablations.run_param_features,
        "thresholds": ablations.run_threshold_sensitivity,
        "cluster-transfer": ablations.run_cluster_transfer,
        "gbrt-weights": ablations.run_gbrt_weights,
        "filter-order": ablations.run_filter_order,
        "store-scalability": ablations.run_store_scalability,
        "cfg-cost": ablations.run_cfg_cost_correlation,
    }


def _maybe_enable_chaos(args: argparse.Namespace):
    """Install the process-default fault injector when --chaos is set.

    Every HBase substrate built afterwards — including the stores the
    experiment drivers create internally — consults the injector, so one
    flag puts a whole suite under faults.  Returns the injector or None.
    """
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    from .chaos import FaultInjector, plan_from_spec, set_default_injector

    injector = FaultInjector(plan_from_spec(spec, seed=args.seed))
    set_default_injector(injector)
    print(f"chaos enabled: {spec} (seed {args.seed})", file=sys.stderr)
    return injector


def _report_chaos(injector) -> None:
    """Print the injected-fault tally after a chaos run."""
    if injector is None:
        return
    summary = injector.summary()
    if not summary:
        print(
            f"chaos: no faults injected over "
            f"{injector.operations_seen} operations",
            file=sys.stderr,
        )
        return
    tally = ", ".join(f"{key} x{count}" for key, count in summary.items())
    print(
        f"chaos: injected {tally} over {injector.operations_seen} operations",
        file=sys.stderr,
    )


def _maybe_emit_metrics(args: argparse.Namespace) -> None:
    """Dump the default registry/tracer snapshot when --emit-metrics is set."""
    path = getattr(args, "emit_metrics", None)
    if not path:
        return
    from .observability import export

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export.to_json())
        handle.write("\n")
    print(f"metrics written to {path}", file=sys.stderr)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentContext, collect_suite

    registry = _experiment_registry()
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2

    injector = _maybe_enable_chaos(args)
    ctx = ExperimentContext.create(args.seed, workers=getattr(args, "workers", 1))
    needs_suite = {"fig6_1", "fig6_2", "fig6_3", "pushdown",
                   "store-models", "thresholds", "gbrt-weights", "filter-order",
                   "store-scalability", "cfg-cost"}
    records = None
    if needs_suite & set(names):
        print("profiling the benchmark suite...", file=sys.stderr)
        records = collect_suite(ctx, seed=args.seed)
    for name in names:
        run = registry[name]
        if name in needs_suite:
            result = run(ctx, records, seed=args.seed)
        else:
            result = run(ctx, seed=args.seed)
        print(result)
        print()
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_list_jobs(args: argparse.Namespace) -> int:
    from .workloads import standard_benchmark

    for entry in standard_benchmark():
        print(
            f"{entry.job.name:<28} {entry.domain:<28} {entry.dataset.name:<18} "
            f"{entry.dataset.num_splits:>4} splits"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .chaos import StoreUnavailableError
    from .core import PStorM
    from .hadoop import HadoopEngine, JobConfiguration, ec2_cluster
    from .workloads import (
        bigram_relative_frequency_job,
        cooccurrence_pairs_job,
        wikipedia_35gb,
    )

    injector = _maybe_enable_chaos(args)
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine)
    wiki = wikipedia_35gb()

    print("storing the bigram relative frequency job's profile...")
    try:
        pstorm.remember(bigram_relative_frequency_job(), wiki, seed=args.seed)
    except StoreUnavailableError as exc:
        print(f"store write failed under chaos, continuing: {exc}", file=sys.stderr)

    unseen = cooccurrence_pairs_job()
    print(f"submitting never-seen job {unseen.name!r}...")
    result = pstorm.submit(unseen, wiki, seed=args.seed)
    default = engine.run_job(unseen, wiki, JobConfiguration(), seed=args.seed)
    print(f"matched: {result.matched} via {result.outcome.map_match.stage}")
    if result.degraded:
        print(f"degraded: {result.degradation_reason} "
              f"-> fallback {result.fallback_path}")
    print(f"default:      {default.runtime_seconds / 60:7.1f} min")
    print(f"PStorM-tuned: {result.runtime_seconds / 60:7.1f} min "
          f"({default.runtime_seconds / result.runtime_seconds:.2f}x)")
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Exercise every instrumented layer once, then render the metrics."""
    from .chaos import StoreUnavailableError
    from .core import PStorM
    from .hadoop import (
        Dataset,
        FunctionRecordSource,
        HadoopEngine,
        MapReduceJob,
        ec2_cluster,
    )
    from .observability import export

    def lines(split_index, rng):
        words = [f"word{i:02d}" for i in range(30)]
        return [
            (i, " ".join(words[int(rng.integers(0, 30))] for __ in range(8)))
            for i in range(80)
        ]

    def wc_map(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def wc_reduce(word, counts, ctx):
        total = 0
        for count in counts:
            total += count
            ctx.report_ops(1)
        ctx.emit(word, total)

    dataset = Dataset(
        "metrics-smoke",
        nominal_bytes=128 << 20,
        source=FunctionRecordSource(lines),
        seed=7,
    )
    job = MapReduceJob(
        name="metrics-wordcount", mapper=wc_map, reducer=wc_reduce,
        combiner=wc_reduce,
    )
    injector = _maybe_enable_chaos(args)
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine, seed=args.seed)
    print("running the smoke workload...", file=sys.stderr)
    try:
        pstorm.remember(job, dataset, seed=args.seed)
    except StoreUnavailableError as exc:
        print(f"store write failed under chaos, continuing: {exc}", file=sys.stderr)
    pstorm.submit(job, dataset, seed=args.seed)
    print(export.to_prometheus(), end="")
    _report_chaos(injector)
    _maybe_emit_metrics(args)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentContext
    from .perfxplain import ExecutionLog, PerfQuery, PerfXplain
    from .workloads import standard_benchmark

    wanted = {args.job_a, args.job_b}
    ctx = ExperimentContext.create(args.seed)
    log = ExecutionLog()
    for entry in standard_benchmark(pigmix_queries=2):
        profile, execution = ctx.profiler.profile_job(
            entry.job, entry.dataset, seed=args.seed
        )
        log.add_execution(profile, execution)
    missing = wanted - set(log.keys())
    if missing:
        print(f"unknown jobs: {', '.join(sorted(missing))}", file=sys.stderr)
        print("known:", file=sys.stderr)
        for key in log.keys():
            print(f"  {key}", file=sys.stderr)
        return 2

    explainer = PerfXplain(log)
    query = PerfQuery(args.job_a, args.job_b, expected=args.expected)
    print(explainer.explain(query).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PStorM reproduction: experiments, demos, explanations.",
    )
    parser.add_argument("--seed", type=int, default=0, help="global RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_emit_metrics(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--emit-metrics",
            metavar="PATH",
            default=None,
            help="write collected metrics and spans to PATH as JSON",
        )

    def add_chaos(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--chaos",
            metavar="SPEC",
            default=None,
            help=(
                "inject store faults: a preset (flaky[:p], outage, "
                "slow[:delay], rolling-restart[:period]) or a JSON "
                "fault-plan path"
            ),
        )

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="experiment names (default: all)")
    experiments.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads for independent (job, dataset) cells (default: 1)",
    )
    add_emit_metrics(experiments)
    add_chaos(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    list_jobs = commands.add_parser("list-jobs", help="the Table 6.1 inventory")
    list_jobs.set_defaults(handler=_cmd_list_jobs)

    demo = commands.add_parser("demo", help="tune a never-seen job via PStorM")
    add_emit_metrics(demo)
    add_chaos(demo)
    demo.set_defaults(handler=_cmd_demo)

    metrics = commands.add_parser(
        "metrics", help="run a smoke workload and print Prometheus-format metrics"
    )
    add_emit_metrics(metrics)
    add_chaos(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    explain = commands.add_parser("explain", help="PerfXplain a job pair")
    explain.add_argument("job_a", help="reference job key, e.g. word-count@wikipedia-35gb")
    explain.add_argument("job_b", help="surprising job key")
    explain.add_argument(
        "--expected", default="similar", choices=("similar", "slower", "faster")
    )
    explain.set_defaults(handler=_cmd_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
