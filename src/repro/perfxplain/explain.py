"""Explanation generation (§2.3.2).

PerfXplain first labels every job pair in the log as matching the
query's *observed* or *expected* relative performance, then searches for
the predicates — (pair feature, operator, threshold) triples — with the
highest information gain for separating the two classes.  The
explanation for the queried pair is the set of top predicates the pair
itself satisfies, rendered as sentences.

Pair features are log-ratios of the entries' numeric features ("job B
shuffles 6.3x more bytes per reducer than job A").  With PStorM static
features available (§7.2.4), categorical *differences* (different input
formatters, different map CFG shapes) join the candidate pool — the
richer explanations the thesis argues PStorM enables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations

from ..core.feature_selection import information_gain
from .log import FEATURE_NAMES, ExecutionLog, LogEntry
from .query import PerfQuery, Relation, relative_performance

__all__ = ["Predicate", "Explanation", "PerfXplain"]

#: Static features whose disagreement makes a categorical predicate.
_STATIC_CANDIDATES = (
    "IN_FORMATTER", "MAPPER", "COMBINER", "REDUCER", "OUT_FORMATTER",
    "MAP_OUT_KEY", "MAP_OUT_VAL",
)


@dataclass(frozen=True)
class Predicate:
    """One candidate explanation predicate."""

    feature: str
    op: str
    value: float | str
    gain: float
    kind: str  # "ratio" or "static"

    def render(self) -> str:
        if self.kind == "static":
            return f"the jobs use different {self.feature} ({self.value})"
        factor = math.exp(abs(float(self.value)))
        direction = "more" if self.op == ">" else "less"
        return (
            f"job B has ≥{factor:.1f}x {direction} {self.feature.replace('_', ' ')} "
            f"than job A"
        )


@dataclass(frozen=True)
class Explanation:
    """The ranked predicates explaining one query."""

    query: PerfQuery
    observed: str
    predicates: tuple[Predicate, ...]

    def render(self) -> str:
        lines = [
            f"{self.query.job_b} was {self.observed} than expected "
            f"({self.query.expected}) relative to {self.query.job_a} because:"
        ]
        if not self.predicates:
            lines.append("  (no discriminating predicate found in the log)")
        for rank, predicate in enumerate(self.predicates, start=1):
            lines.append(f"  {rank}. {predicate.render()}  [gain {predicate.gain:.2f}]")
        return "\n".join(lines)


def _pair_ratios(a: LogEntry, b: LogEntry) -> dict[str, float]:
    """Log-ratio features of one ordered pair."""
    ratios = {}
    for name in FEATURE_NAMES:
        if name == "runtime_seconds":
            continue  # the label, not a feature
        va, vb = a.feature(name), b.feature(name)
        if va > 0 and vb > 0:
            ratios[name] = math.log(vb / va)
        else:
            ratios[name] = 0.0
    return ratios


class PerfXplain:
    """Explanation engine over an execution log."""

    def __init__(self, log: ExecutionLog, top_k: int = 3) -> None:
        if len(log) < 2:
            raise ValueError("the execution log needs at least two entries")
        self.log = log
        self.top_k = top_k

    # ------------------------------------------------------------------
    def explain(self, query: PerfQuery) -> Explanation:
        """Answer one performance question."""
        entry_a = self.log.get(query.job_a)
        entry_b = self.log.get(query.job_b)
        observed = query.observed
        if observed is None:
            observed = relative_performance(
                entry_a.feature("runtime_seconds"),
                entry_b.feature("runtime_seconds"),
            )
        if observed == query.expected:
            return Explanation(query, observed, ())

        labels, rows = self._labelled_pairs(query.expected, observed)
        predicates = self._rank_predicates(labels, rows, query)
        query_ratios = _pair_ratios(entry_a, entry_b)
        matching = tuple(
            p for p in predicates if self._pair_satisfies(p, query_ratios, entry_a, entry_b)
        )[: self.top_k]
        return Explanation(query, observed, matching)

    # ------------------------------------------------------------------
    def _labelled_pairs(
        self, expected: str, observed: str
    ) -> tuple[list[str], list[dict[str, float]]]:
        """Classify every ordered log pair as expected-like or
        observed-like.

        When the log holds no expected-like pair at all (small or skewed
        logs), fall back to contrasting observed-like pairs against every
        other pair, so the predicate search still has two classes.
        """
        labels: list[str] = []
        rows: list[dict[str, float]] = []
        strict: list[bool] = []
        for a, b in permutations(self.log, 2):
            relation = relative_performance(
                a.feature("runtime_seconds"), b.feature("runtime_seconds")
            )
            if relation == observed:
                labels.append("observed")
                strict.append(True)
            elif relation == expected:
                labels.append("expected")
                strict.append(True)
            else:
                labels.append("expected")
                strict.append(False)
            rows.append(_pair_ratios(a, b))

        if "expected" in (l for l, s in zip(labels, strict) if s):
            # Both strict classes exist: keep only strictly classified pairs.
            rows = [row for row, s in zip(rows, strict) if s]
            labels = [label for label, s in zip(labels, strict) if s]
        return labels, rows

    def _rank_predicates(
        self,
        labels: list[str],
        rows: list[dict[str, float]],
        query: PerfQuery,
    ) -> list[Predicate]:
        if not rows or len(set(labels)) < 2:
            return []
        predicates: list[Predicate] = []
        for name in rows[0]:
            if query.despite is not None and name == query.despite:
                continue
            values = [row[name] for row in rows]
            gain = information_gain(values, labels, bins=6)
            if gain <= 1e-9:
                continue
            # Threshold at the observed-class median; direction follows it.
            observed_values = [
                v for v, label in zip(values, labels) if label == "observed"
            ]
            median = sorted(observed_values)[len(observed_values) // 2]
            op = ">" if median >= 0 else "<"
            predicates.append(Predicate(name, op, median, gain, "ratio"))
        predicates.sort(key=lambda p: -p.gain)
        return predicates

    def _pair_satisfies(
        self,
        predicate: Predicate,
        ratios: dict[str, float],
        entry_a: LogEntry,
        entry_b: LogEntry,
    ) -> bool:
        """The queried pair exhibits the predicate: same direction as the
        observed class and at least half its median magnitude."""
        del entry_a, entry_b  # ratio predicates need only the pair ratios
        value = ratios.get(predicate.feature, 0.0)
        threshold = float(predicate.value)
        if predicate.op == ">":
            return value > 0 and value >= 0.5 * max(0.0, threshold)
        return value < 0 and value <= 0.5 * min(0.0, threshold)

    # ------------------------------------------------------------------
    def static_differences(self, query: PerfQuery) -> list[Predicate]:
        """§7.2.4: categorical explanations from PStorM static features."""
        entry_a = self.log.get(query.job_a)
        entry_b = self.log.get(query.job_b)
        differences = []
        for name in _STATIC_CANDIDATES:
            va = entry_a.statics.get(name)
            vb = entry_b.statics.get(name)
            if va and vb and va != vb:
                differences.append(
                    Predicate(name, "!=", f"{va} vs {vb}", gain=1.0, kind="static")
                )
        return differences
