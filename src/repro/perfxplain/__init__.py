"""PerfXplain: automatic MapReduce performance explanations (§2.3.2).

A compact reproduction of the PerfXplain system the thesis discusses as
related work and as an integration target (§7.2.4): an execution log, a
query language over expected/observed relative performance, and
information-gain predicate search for generating explanations — with the
PStorM profile store as a drop-in log source that also contributes
static-feature explanations.
"""

from .explain import Explanation, PerfXplain, Predicate
from .log import FEATURE_NAMES, ExecutionLog, LogEntry
from .query import PerfQuery, Relation, relative_performance

__all__ = [
    "Explanation",
    "PerfXplain",
    "Predicate",
    "FEATURE_NAMES",
    "ExecutionLog",
    "LogEntry",
    "PerfQuery",
    "Relation",
    "relative_performance",
]
