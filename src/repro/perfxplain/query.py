"""The PerfXplain query language (§2.3.2).

A query names a pair of jobs and states the *expected* and *observed*
relative performance, optionally with a despite-a-fact clause: "I expected
these two jobs to run in SIMILAR time DESPITE processing similar input,
but job B was SLOWER — why?".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Relation", "PerfQuery", "relative_performance"]

#: Jobs within this runtime ratio of each other count as SIMILAR.
SIMILARITY_TOLERANCE = 1.25


class Relation:
    """Relative performance relations between job A and job B."""

    SIMILAR = "similar"
    SLOWER = "slower"   # B slower than A
    FASTER = "faster"   # B faster than A

    ALL = (SIMILAR, SLOWER, FASTER)


def relative_performance(
    runtime_a: float, runtime_b: float, tolerance: float = SIMILARITY_TOLERANCE
) -> str:
    """Classify the relative performance of B with respect to A."""
    if runtime_a <= 0 or runtime_b <= 0:
        raise ValueError("runtimes must be positive")
    ratio = runtime_b / runtime_a
    if ratio > tolerance:
        return Relation.SLOWER
    if ratio < 1.0 / tolerance:
        return Relation.FASTER
    return Relation.SIMILAR


@dataclass(frozen=True)
class PerfQuery:
    """One performance question.

    Attributes:
        job_a: log key of the reference job.
        job_b: log key of the job whose performance surprised the user.
        expected: the relation the user expected (B vs A).
        observed: the relation the user saw; filled in from the log's
            runtimes when omitted.
        despite: optional feature name the user believes is comparable
            between the two jobs (the despite-a-fact clause); candidate
            explanations on that feature are suppressed.
    """

    job_a: str
    job_b: str
    expected: str = Relation.SIMILAR
    observed: str | None = None
    despite: str | None = None

    def __post_init__(self) -> None:
        if self.expected not in Relation.ALL:
            raise ValueError(f"unknown relation {self.expected!r}")
        if self.observed is not None and self.observed not in Relation.ALL:
            raise ValueError(f"unknown relation {self.observed!r}")
