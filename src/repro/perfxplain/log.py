"""The PerfXplain execution log.

PerfXplain (§2.3.2) mines a log of past MR job executions: per-job
performance features measured at the different phases of the map/reduce
tasks.  §7.2.4 observes that these are the same dynamic features PStorM
already stores — so the log can be built either directly from executions
or straight out of a :class:`repro.core.store.ProfileStore`, optionally
enriched with PStorM's static features for more precise explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..hadoop.tasks import JobExecution
from ..starfish.profile import JobProfile

__all__ = ["LogEntry", "ExecutionLog"]

#: The numeric performance features one log entry carries.
FEATURE_NAMES: tuple[str, ...] = (
    "runtime_seconds",
    "num_map_tasks",
    "num_reduce_tasks",
    "input_bytes",
    "map_output_bytes",
    "shuffle_bytes_per_reducer",
    "map_size_sel",
    "map_pairs_sel",
    "map_cpu_cost",
    "reduce_cpu_cost",
    "map_seconds_per_task",
    "reduce_seconds_per_task",
)


@dataclass(frozen=True)
class LogEntry:
    """One executed job's performance record."""

    job_name: str
    dataset_name: str
    features: Mapping[str, float]
    statics: Mapping[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.job_name}@{self.dataset_name}"

    def feature(self, name: str) -> float:
        return float(self.features.get(name, 0.0))


def _entry_from_profile(
    profile: JobProfile,
    runtime_seconds: float,
    statics: Mapping[str, str],
) -> LogEntry:
    mp = profile.map_profile
    rp = profile.reduce_profile
    map_out = profile.input_bytes * mp.data_flow["MAP_SIZE_SEL"]
    reducers = max(1, profile.num_reduce_tasks)
    features = {
        "runtime_seconds": runtime_seconds,
        "num_map_tasks": float(profile.num_map_tasks),
        "num_reduce_tasks": float(profile.num_reduce_tasks),
        "input_bytes": float(profile.input_bytes),
        "map_output_bytes": map_out,
        "shuffle_bytes_per_reducer": map_out / reducers if rp else 0.0,
        "map_size_sel": mp.data_flow["MAP_SIZE_SEL"],
        "map_pairs_sel": mp.data_flow["MAP_PAIRS_SEL"],
        "map_cpu_cost": mp.cost_factors.get("MAP_CPU_COST", 0.0),
        "reduce_cpu_cost": (
            rp.cost_factors.get("REDUCE_CPU_COST", 0.0) if rp else 0.0
        ),
        "map_seconds_per_task": sum(mp.phase_times.values()),
        "reduce_seconds_per_task": sum(rp.phase_times.values()) if rp else 0.0,
    }
    return LogEntry(
        job_name=profile.job_name,
        dataset_name=profile.dataset_name,
        features=features,
        statics=dict(statics),
    )


class ExecutionLog:
    """An append-only log of job performance records."""

    def __init__(self) -> None:
        self._entries: dict[str, LogEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries.values())

    def get(self, key: str) -> LogEntry:
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"no log entry for {key!r}")
        return entry

    def keys(self) -> list[str]:
        return sorted(self._entries)

    # ------------------------------------------------------------------
    def add_entry(self, entry: LogEntry) -> None:
        self._entries[entry.key] = entry

    def add_profile(
        self,
        profile: JobProfile,
        runtime_seconds: float,
        statics: Mapping[str, str] | None = None,
    ) -> LogEntry:
        """Record one (profile, observed runtime) pair."""
        entry = _entry_from_profile(profile, runtime_seconds, statics or {})
        self.add_entry(entry)
        return entry

    def add_execution(
        self,
        profile: JobProfile,
        execution: JobExecution,
        statics: Mapping[str, str] | None = None,
    ) -> LogEntry:
        """Record one executed job via its profile + execution record."""
        return self.add_profile(profile, execution.runtime_seconds, statics)

    # ------------------------------------------------------------------
    @classmethod
    def from_profile_store(cls, store: "Any", whatif: "Any") -> "ExecutionLog":
        """§7.2.4: build the log from a PStorM profile store.

        Runtimes come from the What-If engine's default-config prediction
        of each stored profile (the store does not retain raw runtimes),
        and the static features come along for richer explanations.
        """
        from ..hadoop.config import JobConfiguration

        log = cls()
        for job_id in store.job_ids():
            profile = store.get_profile(job_id)
            static = store.get_static(job_id)
            runtime = whatif.predict(profile, JobConfiguration()).runtime_seconds
            log.add_profile(profile, runtime, statics=static.categorical)
        return log
