"""A terminal Starfish-style visualizer.

Figures 4.3, 4.5 and 4.6 of the thesis are screenshots "captured from the
Starfish Visualization System": per-phase breakdowns and task timelines
of job executions.  This module renders the same views as plain text —
phase-time bar charts and wave-structured task Gantt charts — off a
:class:`repro.hadoop.tasks.JobExecution`.
"""

from __future__ import annotations

from ..hadoop.tasks import JobExecution, MAP_PHASES, REDUCE_PHASES

__all__ = ["phase_breakdown", "task_timeline", "compare_phase_breakdowns"]

_BAR_WIDTH = 46


def _render_bars(totals: dict[str, float], title: str) -> list[str]:
    peak = max(totals.values(), default=0.0)
    lines = [title]
    for phase, seconds in totals.items():
        width = int(round(seconds / peak * _BAR_WIDTH)) if peak > 0 else 0
        lines.append(f"  {phase:<8} {'█' * width:<{_BAR_WIDTH}} {seconds:10.1f} s")
    return lines


def phase_breakdown(execution: JobExecution, per_task: bool = True) -> str:
    """Render the map/reduce phase breakdown of one execution.

    Args:
        per_task: average per task (the Fig 4.3/4.5 view) instead of
            cluster-wide totals.
    """
    map_totals = execution.map_phase_totals()
    reduce_totals = execution.reduce_phase_totals()
    if per_task:
        maps = max(1, execution.num_map_tasks)
        reduces = max(1, execution.num_reduce_tasks)
        map_totals = {k: v / maps for k, v in map_totals.items()}
        reduce_totals = {k: v / reduces for k, v in reduce_totals.items()}

    unit = "s/task" if per_task else "s total"
    lines = [
        f"{execution.job_name} on {execution.dataset_name} "
        f"({execution.num_map_tasks} maps, {execution.num_reduce_tasks} reduces)"
    ]
    lines += _render_bars(map_totals, f"map phases ({unit}):")
    if execution.reduce_tasks:
        lines += _render_bars(reduce_totals, f"reduce phases ({unit}):")
    return "\n".join(lines)


def compare_phase_breakdowns(
    first: JobExecution, second: JobExecution, per_task: bool = True
) -> str:
    """Side-by-side phase comparison (the Fig 4.5 view)."""
    def per(execution: JobExecution, totals: dict[str, float], count: int):
        if per_task:
            return {k: v / max(1, count) for k, v in totals.items()}
        return totals

    lines = [f"{'phase':<14}{first.job_name:>20}{second.job_name:>28}"]
    first_map = per(first, first.map_phase_totals(), first.num_map_tasks)
    second_map = per(second, second.map_phase_totals(), second.num_map_tasks)
    for phase in MAP_PHASES:
        lines.append(
            f"map:{phase:<10}{first_map[phase]:>20.2f}{second_map[phase]:>28.2f}"
        )
    if first.reduce_tasks and second.reduce_tasks:
        first_red = per(first, first.reduce_phase_totals(), first.num_reduce_tasks)
        second_red = per(second, second.reduce_phase_totals(), second.num_reduce_tasks)
        for phase in REDUCE_PHASES:
            lines.append(
                f"red:{phase:<10}{first_red[phase]:>20.2f}{second_red[phase]:>28.2f}"
            )
    return "\n".join(lines)


def task_timeline(
    execution: JobExecution,
    map_slots: int,
    reduce_slots: int,
    width: int = 72,
    max_rows: int = 24,
) -> str:
    """Render a wave-structured Gantt chart of the execution.

    Each row is a slot; ``m``/``r`` cells mark a running map/reduce task.
    Reconstructs the greedy schedule the engine used, so waves and the
    reduce overlap are visible the way the Starfish visualizer shows them.
    """
    import heapq

    from ..hadoop.config import JobConfiguration
    from ..hadoop.scheduler import schedule_job

    schedule = schedule_job(
        execution.map_tasks,
        execution.reduce_tasks,
        map_slots,
        reduce_slots,
        JobConfiguration(),
    )
    horizon = max(schedule.runtime_seconds, 1e-9)

    def place(durations, finishes, num_slots):
        """Recover (slot, start, finish) per task from finish times."""
        slots = [0.0] * num_slots
        assignment = []
        for duration, finish in zip(durations, finishes):
            start = finish - duration
            slot = min(range(num_slots), key=lambda s: abs(slots[s] - start))
            assignment.append((slot, start, finish))
            slots[slot] = finish
        return assignment

    rows: list[str] = []

    map_rows = min(map_slots, max_rows // 2, len(execution.map_tasks))
    map_assignment = place(
        [t.duration for t in execution.map_tasks],
        schedule.map_finish_times,
        map_slots,
    )
    grid = [[" "] * width for __ in range(map_rows)]
    for slot, start, finish in map_assignment:
        if slot >= map_rows:
            continue
        lo = int(start / horizon * (width - 1))
        hi = max(lo + 1, int(finish / horizon * (width - 1)))
        for x in range(lo, min(hi, width)):
            grid[slot][x] = "m"
    rows += [f"map  slot {i:<3}|{''.join(row)}|" for i, row in enumerate(grid)]

    if execution.reduce_tasks:
        reduce_rows = min(reduce_slots, max_rows // 2, len(execution.reduce_tasks))
        reduce_assignment = place(
            [t.duration for t in execution.reduce_tasks],
            schedule.reduce_finish_times,
            reduce_slots,
        )
        grid = [[" "] * width for __ in range(reduce_rows)]
        for slot, start, finish in reduce_assignment:
            if slot >= reduce_rows:
                continue
            lo = int(max(start, 0) / horizon * (width - 1))
            hi = max(lo + 1, int(finish / horizon * (width - 1)))
            for x in range(lo, min(hi, width)):
                grid[slot][x] = "r"
        rows += [f"red  slot {i:<3}|{''.join(row)}|" for i, row in enumerate(grid)]

    header = (
        f"{execution.job_name}: runtime {schedule.runtime_seconds:.0f} s, "
        f"0 s {'─' * (width - 14)} {schedule.runtime_seconds:.0f} s"
    )
    return "\n".join([header] + rows)
