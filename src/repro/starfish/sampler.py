"""The Starfish sampler: profile a random subset of map tasks.

Starfish's rule of thumb samples 10% of a job's map tasks ("10%-profile");
PStorM needs far less — one map task plus the reducers that process its
output — because its sample only has to support a store lookup, not a
full-fidelity profile (§3).  Both modes are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.job import MapReduceJob
from ..hadoop.tasks import JobExecution
from .profile import JobProfile
from .profiler import StarfishProfiler

__all__ = ["Sampler", "SampleResult"]


@dataclass(frozen=True)
class SampleResult:
    """Outcome of a sampling run."""

    profile: JobProfile
    execution: JobExecution
    sampled_task_ids: tuple[int, ...]

    @property
    def map_slots_consumed(self) -> int:
        """Map slots the sampling run occupied (Fig 4.1b's metric)."""
        return len(self.sampled_task_ids)

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock cost of the sampling run."""
        return self.execution.runtime_seconds


@dataclass
class Sampler:
    """Selects random input splits and runs only their map tasks."""

    profiler: StarfishProfiler

    def choose_task_ids(
        self,
        dataset: Dataset,
        fraction: float | None = None,
        count: int | None = None,
        seed: int = 0,
    ) -> list[int]:
        """Pick map task ids uniformly at random without replacement.

        Exactly one of *fraction* / *count* must be given.
        """
        if (fraction is None) == (count is None):
            raise ValueError("give exactly one of fraction or count")
        num_splits = dataset.num_splits
        if fraction is not None:
            if not 0 < fraction <= 1:
                raise ValueError("fraction must be in (0, 1]")
            count = max(1, round(num_splits * fraction))
        count = min(count, num_splits)
        rng = np.random.default_rng(seed)
        chosen = rng.choice(num_splits, size=count, replace=False)
        return sorted(int(i) for i in chosen)

    def collect(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        fraction: float | None = None,
        count: int | None = None,
        seed: int = 0,
    ) -> SampleResult:
        """Run a sampling pass and collect its profile.

        ``count=1`` is PStorM's 1-task sample; ``fraction=0.1`` is
        Starfish's 10%-profile.
        """
        task_ids = self.choose_task_ids(dataset, fraction, count, seed)
        profile, execution = self.profiler.profile_job(
            job, dataset, config, map_task_ids=task_ids, seed=seed
        )
        return SampleResult(
            profile=profile,
            execution=execution,
            sampled_task_ids=tuple(task_ids),
        )
