"""The Starfish cost-based optimizer (CBO).

Searches the 14-parameter configuration space with recursive random search
(the strategy the Starfish job optimizer uses): a broad random sampling of
the space, followed by rounds of local perturbation around the elite
configurations, always scoring candidates with the What-If engine.  The
recommendation is the best-predicted configuration found — so the quality
of the recommendation is bounded by the quality of the profile given to
the WIF engine, which is exactly what PStorM's matcher competes on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..hadoop.config import CONFIGURATION_SPACE, JobConfiguration, ParameterSpec
from .profile import JobProfile
from .whatif import WhatIfEngine

__all__ = ["CostBasedOptimizer", "OptimizationResult"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a CBO search."""

    best_config: JobConfiguration
    predicted_runtime: float
    evaluations: int
    default_predicted_runtime: float

    @property
    def predicted_speedup(self) -> float:
        """Predicted improvement over the default configuration."""
        if self.predicted_runtime <= 0:
            return 1.0
        return self.default_predicted_runtime / self.predicted_runtime


def _sample_value(spec: ParameterSpec, rng: np.random.Generator):
    """Draw one random legal value for a parameter."""
    if spec.kind == "bool":
        return bool(rng.integers(0, 2))
    low, high = float(spec.low), float(spec.high)
    if spec.log_scale:
        value = math.exp(rng.uniform(math.log(max(low, 1e-9)), math.log(high)))
    else:
        value = rng.uniform(low, high)
    return spec.clamp(value)


def _perturb_value(spec: ParameterSpec, current, rng: np.random.Generator):
    """Locally perturb a value (refinement move)."""
    if spec.kind == "bool":
        return not current
    factor = math.exp(rng.normal(0.0, 0.35))
    if spec.log_scale:
        return spec.clamp(current * factor)
    span = (float(spec.high) - float(spec.low)) * 0.15
    return spec.clamp(current + rng.normal(0.0, span))


@dataclass
class CostBasedOptimizer:
    """Recursive-random-search optimizer over the WIF engine.

    Attributes:
        whatif: the What-If engine used as the objective.
        num_samples: size of the initial random sampling.
        refine_rounds: rounds of local perturbation.
        elite: how many best configurations seed each refinement round.
        perturbations_per_elite: neighbours generated per elite per round.
        max_reducers: optional cap on ``mapred.reduce.tasks`` during the
            search; defaults to the parameter's full range, since huge
            shuffles genuinely profit from many reducer waves.
        seed: RNG seed; the search is fully deterministic.
    """

    whatif: WhatIfEngine
    num_samples: int = 120
    refine_rounds: int = 3
    elite: int = 5
    perturbations_per_elite: int = 6
    max_reducers: int | None = None
    seed: int = 0

    _REDUCER_SPEC_HIGH = 512

    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
    ) -> OptimizationResult:
        """Search for the configuration with the lowest predicted runtime."""
        rng = np.random.default_rng(self.seed)
        reducer_cap = self.max_reducers
        if reducer_cap is None:
            reducer_cap = self._REDUCER_SPEC_HIGH

        def evaluate(config: JobConfiguration) -> float:
            return self.whatif.predict(profile, config, data_bytes).runtime_seconds

        def random_config() -> JobConfiguration:
            attrs = {}
            for spec in CONFIGURATION_SPACE:
                value = _sample_value(spec, rng)
                if spec.attribute == "num_reduce_tasks":
                    value = min(value, reducer_cap)
                attrs[spec.attribute] = value
            return JobConfiguration(**attrs)

        default = JobConfiguration()
        default_runtime = evaluate(default)

        scored: list[tuple[float, JobConfiguration]] = [(default_runtime, default)]
        evaluations = 1
        for __ in range(self.num_samples):
            config = random_config()
            scored.append((evaluate(config), config))
            evaluations += 1

        for __ in range(self.refine_rounds):
            scored.sort(key=lambda pair: pair[0])
            elites = scored[: self.elite]
            for __, elite_config in elites:
                for __ in range(self.perturbations_per_elite):
                    attrs = {}
                    for spec in CONFIGURATION_SPACE:
                        current = getattr(elite_config, spec.attribute)
                        if rng.random() < 0.4:
                            value = _perturb_value(spec, current, rng)
                        else:
                            value = current
                        if spec.attribute == "num_reduce_tasks":
                            value = min(value, reducer_cap)
                        attrs[spec.attribute] = value
                    candidate = JobConfiguration(**attrs)
                    scored.append((evaluate(candidate), candidate))
                    evaluations += 1

        scored.sort(key=lambda pair: pair[0])
        best_runtime, best_config = scored[0]
        return OptimizationResult(
            best_config=best_config,
            predicted_runtime=best_runtime,
            evaluations=evaluations,
            default_predicted_runtime=default_runtime,
        )
