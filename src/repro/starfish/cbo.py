"""The Starfish cost-based optimizer (CBO).

Searches the 14-parameter configuration space with recursive random search
(the strategy the Starfish job optimizer uses): a broad random sampling of
the space, followed by rounds of local perturbation around the elite
configurations, always scoring candidates with the What-If engine.  The
recommendation is the best-predicted configuration found — so the quality
of the recommendation is bounded by the quality of the profile given to
the WIF engine, which is exactly what PStorM's matcher competes on.

The search is columnar end to end: candidate generations are drawn as
``(n, 14)`` NumPy matrices (one vectorized RNG call per parameter instead
of one scalar call per parameter *per candidate*) and priced through
:meth:`WhatIfEngine.predict_matrix`, with a memo cache (keyed on the
quantized parameter vector) so duplicate candidates are never re-priced,
and a bounded top-K pool instead of an ever-growing re-sorted list.
:meth:`CostBasedOptimizer.optimize_sequential` scores the *same* candidate
stream one scalar ``predict()`` at a time; because the batched predictions
are bit-identical to the scalar path and ties break on insertion order
exactly like the original stable sort, both paths return byte-identical
recommendations for any fixed seed.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass

import numpy as np

from ..hadoop.config import CONFIGURATION_SPACE, JobConfiguration, ParameterSpec
from ..observability import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from .profile import JobProfile
from .whatif import WhatIfEngine

__all__ = ["CostBasedOptimizer", "OptimizationResult"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a CBO search."""

    best_config: JobConfiguration
    predicted_runtime: float
    evaluations: int
    default_predicted_runtime: float
    #: Candidates answered from the memo cache instead of the WIF engine
    #: (0 on the sequential reference path, which keeps no memo).
    memo_hits: int = 0

    @property
    def predicted_speedup(self) -> float:
        """Predicted improvement over the default configuration."""
        if self.predicted_runtime <= 0:
            return 1.0
        return self.default_predicted_runtime / self.predicted_runtime


#: Column index of every parameter in the candidate matrix (Table 2.1 order).
_COLUMN_INDEX: dict[str, int] = {
    spec.attribute: j for j, spec in enumerate(CONFIGURATION_SPACE)
}
_FLOAT_COLUMNS: tuple[int, ...] = tuple(
    j for j, spec in enumerate(CONFIGURATION_SPACE) if spec.kind == "float"
)
_DEFAULT_ROW: np.ndarray = np.array(
    [float(spec.default) for spec in CONFIGURATION_SPACE]
)
#: Relative width of a local (non-log) perturbation move.
_PERTURB_SPAN = 0.15
#: Sigma of the multiplicative log-space perturbation move.
_PERTURB_SIGMA = 0.35
#: Probability that a refinement move touches any given parameter.
_PERTURB_PROBABILITY = 0.4


def _clamp_column(
    spec: ParameterSpec, values: np.ndarray, reducer_cap: int | None
) -> np.ndarray:
    """Vectorized :meth:`ParameterSpec.clamp` over one candidate column."""
    if spec.kind == "bool":
        return values
    high = float(spec.high)
    if reducer_cap is not None and spec.attribute == "num_reduce_tasks":
        high = min(high, float(reducer_cap))
    values = np.clip(values, float(spec.low), high)
    if spec.kind == "int":
        values = np.rint(values)
    return values


def _random_matrix(
    rng: np.random.Generator, n: int, reducer_cap: int | None
) -> np.ndarray:
    """Draw *n* random legal configurations as an ``(n, 14)`` matrix.

    One vectorized RNG call per parameter — booleans as a Bernoulli column,
    log-scale parameters as ``exp(uniform(log low, log high))``, the rest
    uniform over their legal range — in Table 2.1 order, so the draw is
    fully determined by the generator state.
    """
    matrix = np.empty((n, len(CONFIGURATION_SPACE)))
    for j, spec in enumerate(CONFIGURATION_SPACE):
        if spec.kind == "bool":
            column = rng.integers(0, 2, size=n).astype(np.float64)
        elif spec.log_scale:
            low = math.log(max(float(spec.low), 1e-9))
            column = np.exp(rng.uniform(low, math.log(float(spec.high)), size=n))
        else:
            column = rng.uniform(float(spec.low), float(spec.high), size=n)
        matrix[:, j] = _clamp_column(spec, column, reducer_cap)
    return matrix


def _perturb_matrix(
    rng: np.random.Generator,
    elite_matrix: np.ndarray,
    per_elite: int,
    reducer_cap: int | None,
) -> np.ndarray:
    """Generate ``per_elite`` local neighbours of every elite row.

    Each parameter of each neighbour is perturbed independently with
    probability ``_PERTURB_PROBABILITY``: booleans flip, log-scale values
    move by a log-normal factor, linear values by a Gaussian step sized to
    the parameter's range.  Unperturbed entries are copied bit-exactly,
    which is what makes the memo cache's duplicate detection effective.
    """
    base = np.repeat(elite_matrix, per_elite, axis=0)
    out = base.copy()
    n = len(base)
    for j, spec in enumerate(CONFIGURATION_SPACE):
        perturb = rng.random(n) < _PERTURB_PROBABILITY
        current = base[:, j]
        if spec.kind == "bool":
            out[:, j] = np.where(perturb, 1.0 - current, current)
            continue
        if spec.log_scale:
            moved = current * np.exp(rng.normal(0.0, _PERTURB_SIGMA, size=n))
        else:
            span = (float(spec.high) - float(spec.low)) * _PERTURB_SPAN
            moved = current + rng.normal(0.0, span, size=n)
        out[:, j] = np.where(
            perturb, _clamp_column(spec, moved, reducer_cap), current
        )
    return out


def _quantize_matrix(matrix: np.ndarray) -> np.ndarray:
    """Round float columns to 12 significant digits (memo-key resolution).

    Integer and boolean columns are already exact by construction.  Twelve
    significant digits keeps the chance of two *distinct* random draws
    colliding far below anything a search could produce, while candidates
    copied bit-exactly (unperturbed elite entries) and values clamped onto
    a range boundary land on identical keys.
    """
    quantized = matrix.copy()
    for j in _FLOAT_COLUMNS:
        column = quantized[:, j]
        nonzero = column != 0.0
        safe = np.where(nonzero, np.abs(column), 1.0)
        scale = np.power(10.0, 11.0 - np.floor(np.log10(safe)))
        quantized[:, j] = np.where(
            nonzero, np.round(column * scale) / scale, 0.0
        )
    return quantized


def _config_from_row(row: np.ndarray) -> JobConfiguration:
    """Materialize one candidate-matrix row as a :class:`JobConfiguration`."""
    attrs: dict[str, object] = {}
    for j, spec in enumerate(CONFIGURATION_SPACE):
        value = row[j]
        if spec.kind == "bool":
            attrs[spec.attribute] = bool(value)
        elif spec.kind == "int":
            attrs[spec.attribute] = int(value)
        else:
            attrs[spec.attribute] = float(value)
    return JobConfiguration(**attrs)


class _TopK:
    """Bounded best-K pool ranked by (runtime, insertion index).

    Replaces the unbounded ``scored`` list + full re-sort per refine round:
    a size-K max-heap keeps exactly the K candidates a stable
    sort-by-runtime would rank first, because ties fall back to insertion
    order just like Python's stable ``list.sort``.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._heap: list[tuple[float, int, np.ndarray]] = []
        self._inserted = 0

    def push(self, runtime: float, row: np.ndarray) -> None:
        entry = (-runtime, -self._inserted, row)
        self._inserted += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        else:
            heapq.heappushpop(self._heap, entry)

    def ranked(self) -> list[tuple[float, np.ndarray]]:
        """Contents as (runtime, row), best first; ties by insertion."""
        ordered = sorted(
            ((-r, -i, row) for r, i, row in self._heap),
            key=lambda entry: (entry[0], entry[1]),
        )
        return [(runtime, row) for runtime, __, row in ordered]


@dataclass
class CostBasedOptimizer:
    """Recursive-random-search optimizer over the WIF engine.

    Attributes:
        whatif: the What-If engine used as the objective.
        num_samples: size of the initial random sampling.
        refine_rounds: rounds of local perturbation.
        elite: how many best configurations seed each refinement round.
        perturbations_per_elite: neighbours generated per elite per round.
        max_reducers: optional cap on ``mapred.reduce.tasks`` during the
            search; defaults to the parameter's full range, since huge
            shuffles genuinely profit from many reducer waves.
        seed: RNG seed; the search is fully deterministic.
        registry: metrics sink; None falls back to the module default.
    """

    whatif: WhatIfEngine
    num_samples: int = 120
    refine_rounds: int = 3
    elite: int = 5
    perturbations_per_elite: int = 6
    max_reducers: int | None = None
    seed: int = 0
    registry: MetricsRegistry | None = None

    # ------------------------------------------------------------------
    def optimize(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
    ) -> OptimizationResult:
        """Search for the configuration with the lowest predicted runtime.

        Candidate generations are scored through the batched What-If path;
        the recommendation is byte-identical to the scalar reference
        (:meth:`optimize_sequential`) for the same seed.
        """
        registry = get_registry(self.registry)
        started = time.perf_counter()
        rng = np.random.default_rng(self.seed)

        memo: dict[bytes, float] = {}
        stats = {"evaluations": 0, "memo_hits": 0}
        pool = _TopK(self.elite)

        matrix = np.vstack(
            [
                _DEFAULT_ROW[None, :],
                _random_matrix(rng, self.num_samples, self.max_reducers),
            ]
        )
        runtimes = self._score_matrix(
            profile, matrix, data_bytes, memo, stats, registry
        )
        default_runtime = runtimes[0]
        for runtime, row in zip(runtimes, matrix):
            pool.push(runtime, row)

        for __ in range(self.refine_rounds):
            elites = pool.ranked()[: self.elite]
            elite_matrix = np.array([row for __, row in elites])
            matrix = _perturb_matrix(
                rng, elite_matrix, self.perturbations_per_elite, self.max_reducers
            )
            runtimes = self._score_matrix(
                profile, matrix, data_bytes, memo, stats, registry
            )
            for runtime, row in zip(runtimes, matrix):
                pool.push(runtime, row)

        best_runtime, best_row = pool.ranked()[0]
        registry.counter(
            "cbo_optimizations_total", "CBO searches completed"
        ).inc()
        registry.histogram(
            "cbo_optimize_seconds",
            "wall time of one CBO search",
            buckets=LATENCY_BUCKETS,
        ).observe(time.perf_counter() - started)
        return OptimizationResult(
            best_config=_config_from_row(best_row),
            predicted_runtime=best_runtime,
            evaluations=stats["evaluations"],
            default_predicted_runtime=default_runtime,
            memo_hits=stats["memo_hits"],
        )

    # ------------------------------------------------------------------
    def _score_matrix(
        self,
        profile: JobProfile,
        matrix: np.ndarray,
        data_bytes: int | None,
        memo: dict[bytes, float],
        stats: dict[str, int],
        registry: MetricsRegistry,
    ) -> list[float]:
        """Price one generation: dedupe, batch-predict the misses, memoize.

        ``evaluations`` counts every candidate considered — including memo
        hits — matching the sequential path's accounting, while
        ``memo_hits`` tracks how many never reached the WIF engine.
        """
        n = len(matrix)
        if n == 0:
            return []
        quantized = _quantize_matrix(matrix)
        keys = [quantized[i].tobytes() for i in range(n)]
        pending_slots: dict[bytes, int] = {}
        pending_rows: list[int] = []
        for i, key in enumerate(keys):
            if key not in memo and key not in pending_slots:
                pending_slots[key] = len(pending_rows)
                pending_rows.append(i)
        if pending_rows:
            batch = self.whatif.predict_matrix(
                profile, matrix[pending_rows], data_bytes
            )
            runtimes = batch.runtime_seconds
            for key, slot in pending_slots.items():
                memo[key] = float(runtimes[slot])
        hits = n - len(pending_rows)
        stats["evaluations"] += n
        stats["memo_hits"] += hits
        registry.counter(
            "cbo_memo_hits_total", "CBO candidates answered from the memo cache"
        ).inc(hits)
        registry.counter(
            "cbo_memo_misses_total", "CBO candidates priced by the WIF engine"
        ).inc(len(pending_rows))
        registry.histogram(
            "cbo_generation_size",
            "candidates per scored generation (before dedupe)",
            buckets=COUNT_BUCKETS,
        ).observe(n)
        return [memo[key] for key in keys]

    # ------------------------------------------------------------------
    def optimize_sequential(
        self,
        profile: JobProfile,
        data_bytes: int | None = None,
    ) -> OptimizationResult:
        """The scalar reference search: one ``predict()`` per candidate.

        Walks the *same* candidate stream as :meth:`optimize` (the
        generation helpers share the RNG call sequence) but prices every
        candidate with a scalar ``predict()`` call and keeps the original
        unbounded scored list with a full re-sort per refinement round.
        This is the ground truth the batched path is verified against
        (property tests) and benchmarked against
        (``benchmarks/test_cbo_throughput.py``).
        """
        rng = np.random.default_rng(self.seed)

        def evaluate(row: np.ndarray) -> float:
            config = _config_from_row(row)
            return self.whatif.predict(profile, config, data_bytes).runtime_seconds

        matrix = np.vstack(
            [
                _DEFAULT_ROW[None, :],
                _random_matrix(rng, self.num_samples, self.max_reducers),
            ]
        )
        scored: list[tuple[float, np.ndarray]] = [
            (evaluate(row), row) for row in matrix
        ]
        evaluations = len(scored)
        default_runtime = scored[0][0]

        for __ in range(self.refine_rounds):
            scored.sort(key=lambda pair: pair[0])
            elite_matrix = np.array([row for __, row in scored[: self.elite]])
            candidates = _perturb_matrix(
                rng, elite_matrix, self.perturbations_per_elite, self.max_reducers
            )
            for row in candidates:
                scored.append((evaluate(row), row))
                evaluations += 1

        scored.sort(key=lambda pair: pair[0])
        best_runtime, best_row = scored[0]
        return OptimizationResult(
            best_config=_config_from_row(best_row),
            predicted_runtime=best_runtime,
            evaluations=evaluations,
            default_predicted_runtime=default_runtime,
        )
