"""Starfish substrate: profiler, sampler, What-If engine, CBO, and RBO.

The feedback-based tuning stack PStorM plugs into (§2.3.1): execution
profiles with data-flow statistics and cost factors, task sampling,
analytical runtime prediction, recursive-random-search cost-based
optimization, and the Appendix B rule-based optimizer baseline.
"""

from .analyzer import Bottleneck, analyze_profile
from .cbo import CostBasedOptimizer, OptimizationResult
from .profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    MAP_STATISTICS,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    REDUCE_STATISTICS,
    JobProfile,
    SideProfile,
)
from .profiler import StarfishProfiler, build_profile
from .rbo import RboDecision, RuleBasedOptimizer
from .sampler import Sampler, SampleResult
from .visualizer import compare_phase_breakdowns, phase_breakdown, task_timeline
from .whatif import BatchPrediction, WhatIfEngine, WhatIfPrediction

__all__ = [
    "BatchPrediction",
    "Bottleneck",
    "analyze_profile",
    "CostBasedOptimizer",
    "OptimizationResult",
    "MAP_COST_FEATURES",
    "MAP_DATA_FLOW_FEATURES",
    "MAP_STATISTICS",
    "REDUCE_COST_FEATURES",
    "REDUCE_DATA_FLOW_FEATURES",
    "REDUCE_STATISTICS",
    "JobProfile",
    "SideProfile",
    "StarfishProfiler",
    "build_profile",
    "RboDecision",
    "RuleBasedOptimizer",
    "Sampler",
    "SampleResult",
    "compare_phase_breakdowns",
    "phase_breakdown",
    "task_timeline",
    "WhatIfEngine",
    "WhatIfPrediction",
]
