"""The Starfish profiler: turn an instrumented execution into a profile.

The real profiler attaches dynamic instrumentation (BTrace) to an
unmodified MR job and records per-phase timings and data-flow counters.
Here the :class:`repro.hadoop.engine.HadoopEngine` exposes exactly those
observables on its task execution records, so profiling means (a) running
the job with per-task overhead inflation turned on, and (b) aggregating
the task records into a :class:`JobProfile`.
"""

from __future__ import annotations

import statistics as stats
from dataclasses import dataclass

import numpy as np

from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.engine import DEFAULT_PROFILING_OVERHEAD, HadoopEngine
from ..hadoop.job import MapReduceJob
from ..hadoop.mapper_engine import (
    INTERMEDIATE_COMPRESSION_RATIO,
    MERGE_READ_CPU_FRACTION,
    OP_CPU_FRACTION,
    READER_CPU_FRACTION,
    SPILL_SER_CPU_FRACTION,
)
from ..hadoop.reducer_engine import SHUFFLE_CPU_FRACTION, WRITE_SER_CPU_FRACTION
from ..hadoop.tasks import JobExecution, MAP_PHASES, REDUCE_PHASES
from .profile import JobProfile, SideProfile

__all__ = ["StarfishProfiler", "build_profile"]


def _mean(values: list[float]) -> float:
    return stats.fmean(values) if values else 0.0


def _map_side_profile(execution: JobExecution, config: JobConfiguration) -> SideProfile:
    tasks = execution.map_tasks
    total_in_bytes = sum(t.input_bytes for t in tasks)
    total_in_records = sum(t.input_records for t in tasks)
    total_out_bytes = sum(t.map_output_bytes for t in tasks)
    total_out_records = sum(t.map_output_records for t in tasks)

    combine_in = sum(t.combine_input_records for t in tasks)
    combine_out = sum(t.combine_output_records for t in tasks)
    if combine_in > 0:
        combine_pairs_sel = combine_out / combine_in
        combine_size_sel = (
            sum(t.spill_bytes for t in tasks) / max(1, total_out_bytes)
        )
        has_combiner = 1.0
    else:
        combine_pairs_sel = 1.0
        combine_size_sel = 1.0
        has_combiner = 0.0

    data_flow = {
        "MAP_SIZE_SEL": total_out_bytes / max(1, total_in_bytes),
        "MAP_PAIRS_SEL": total_out_records / max(1, total_in_records),
        "COMBINE_SIZE_SEL": combine_size_sel,
        "COMBINE_PAIRS_SEL": combine_pairs_sel,
    }

    # Cost factors are derived per task the way operation-level
    # instrumentation measures them: per-byte costs fold in the per-record
    # framework overheads, so they are *job-dependent* (small records cost
    # more per byte) on top of node/utilization noise.
    read_costs = []
    read_local_costs = []
    write_local_costs = []
    map_cpu_costs = []
    combine_cpu_costs = []
    for task in tasks:
        cpu = task.rates.cpu_ns_per_record
        read_cost = task.rates.read_hdfs_ns_per_byte
        if task.input_bytes:
            read_cost += READER_CPU_FRACTION * cpu * task.input_records / task.input_bytes
        read_costs.append(read_cost)

        read_local_cost = task.rates.read_local_ns_per_byte
        if task.materialized_bytes:
            read_local_cost += (
                MERGE_READ_CPU_FRACTION
                * cpu
                * task.spill_records
                / task.materialized_bytes
            )
        read_local_costs.append(read_local_cost)

        write_cost = task.rates.write_local_ns_per_byte
        if task.materialized_bytes:
            write_cost += (
                SPILL_SER_CPU_FRACTION
                * cpu
                * task.spill_records
                / task.materialized_bytes
            )
        write_local_costs.append(write_cost)

        if task.input_records:
            map_cpu_costs.append(
                task.phase_times["MAP"] * 1e9 / task.input_records
            )
        if task.combine_input_records:
            op_ns = cpu * OP_CPU_FRACTION
            combine_cpu_costs.append(
                task.combine_ops * op_ns / task.combine_input_records
            )
    cost_factors = {
        "READ_HDFS_IO_COST": _mean(read_costs),
        "READ_LOCAL_IO_COST": _mean(read_local_costs),
        "WRITE_LOCAL_IO_COST": _mean(write_local_costs),
        "MAP_CPU_COST": _mean(map_cpu_costs),
        "COMBINE_CPU_COST": _mean(combine_cpu_costs),
    }

    statistics = {
        "INPUT_RECORD_BYTES": total_in_bytes / max(1, total_in_records),
        "INTERMEDIATE_RECORD_BYTES": total_out_bytes / max(1, total_out_records),
        "FRAMEWORK_CPU_COST": _mean([t.rates.cpu_ns_per_record for t in tasks]),
        "NETWORK_COST": _mean([t.rates.network_ns_per_byte for t in tasks]),
        "COMPRESS_CPU_COST": _mean([t.rates.compress_ns_per_byte for t in tasks]),
        "DECOMPRESS_CPU_COST": _mean([t.rates.decompress_ns_per_byte for t in tasks]),
        "HAS_COMBINER": has_combiner,
    }

    phase_times = {
        phase: _mean([t.phase_times.get(phase, 0.0) for t in tasks])
        for phase in MAP_PHASES
    }
    return SideProfile(
        side="map",
        data_flow=data_flow,
        cost_factors=cost_factors,
        statistics=statistics,
        phase_times=phase_times,
        num_tasks=len(tasks),
    )


def _reduce_side_profile(
    execution: JobExecution, config: JobConfiguration
) -> SideProfile | None:
    tasks = execution.reduce_tasks
    if not tasks:
        return None

    wire_bytes = [float(t.shuffle_bytes) for t in tasks]
    if config.compress_map_output:
        plain_bytes = [b / INTERMEDIATE_COMPRESSION_RATIO for b in wire_bytes]
    else:
        plain_bytes = wire_bytes
    total_in_bytes = sum(plain_bytes)
    total_in_records = sum(t.reduce_input_records for t in tasks)
    total_groups = sum(t.reduce_input_groups for t in tasks)
    total_out_records = sum(t.output_records for t in tasks)
    total_out_bytes = sum(t.output_bytes for t in tasks)

    data_flow = {
        "RED_SIZE_SEL": total_out_bytes / max(1.0, total_in_bytes),
        "RED_PAIRS_SEL": total_out_records / max(1, total_in_records),
    }

    reduce_cpu_costs = [
        t.phase_times["REDUCE"] * 1e9 / t.reduce_input_records
        for t in tasks
        if t.reduce_input_records
    ]
    write_hdfs_costs = []
    network_costs = []
    for task in tasks:
        cpu = task.rates.cpu_ns_per_record
        write_cost = task.rates.write_hdfs_ns_per_byte
        if task.materialized_bytes:
            write_cost += (
                WRITE_SER_CPU_FRACTION
                * cpu
                * task.output_records
                / task.materialized_bytes
            )
        write_hdfs_costs.append(write_cost)

        network_cost = task.rates.network_ns_per_byte
        if task.shuffle_bytes:
            network_cost += (
                SHUFFLE_CPU_FRACTION * cpu * task.shuffle_records / task.shuffle_bytes
            )
        network_costs.append(network_cost)
    cost_factors = {
        "READ_LOCAL_IO_COST": _mean([t.rates.read_local_ns_per_byte for t in tasks]),
        "WRITE_LOCAL_IO_COST": _mean([t.rates.write_local_ns_per_byte for t in tasks]),
        "WRITE_HDFS_IO_COST": _mean(write_hdfs_costs),
        "REDUCE_CPU_COST": _mean(reduce_cpu_costs),
    }

    mean_wire = _mean(wire_bytes)
    skew = max(wire_bytes) / mean_wire if mean_wire > 0 else 1.0
    statistics = {
        "RECORDS_PER_GROUP": total_in_records / max(1, total_groups),
        "OUT_RECORDS_PER_GROUP": total_out_records / max(1, total_groups),
        "OUTPUT_RECORD_BYTES": total_out_bytes / max(1, total_out_records),
        "REDUCE_SKEW": skew,
        "FRAMEWORK_CPU_COST": _mean([t.rates.cpu_ns_per_record for t in tasks]),
        "NETWORK_COST": _mean(network_costs),
        "COMPRESS_CPU_COST": _mean([t.rates.compress_ns_per_byte for t in tasks]),
        "DECOMPRESS_CPU_COST": _mean([t.rates.decompress_ns_per_byte for t in tasks]),
    }

    phase_times = {
        phase: _mean([t.phase_times.get(phase, 0.0) for t in tasks])
        for phase in REDUCE_PHASES
    }
    return SideProfile(
        side="reduce",
        data_flow=data_flow,
        cost_factors=cost_factors,
        statistics=statistics,
        phase_times=phase_times,
        num_tasks=len(tasks),
    )


def build_profile(
    execution: JobExecution,
    config: JobConfiguration,
    source: str,
    split_bytes: int,
) -> JobProfile:
    """Aggregate an instrumented execution into a job profile."""
    return JobProfile(
        job_name=execution.job_name,
        dataset_name=execution.dataset_name,
        input_bytes=execution.input_bytes,
        split_bytes=split_bytes,
        num_map_tasks=execution.num_map_tasks,
        num_reduce_tasks=execution.num_reduce_tasks,
        map_profile=_map_side_profile(execution, config),
        reduce_profile=_reduce_side_profile(execution, config),
        source=source,
    )


@dataclass
class StarfishProfiler:
    """Collects execution profiles by running instrumented jobs.

    Attributes:
        engine: the Hadoop engine jobs run on.
        overhead: relative per-task slowdown of instrumentation.
    """

    engine: HadoopEngine
    overhead: float = DEFAULT_PROFILING_OVERHEAD

    def profile_job(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        map_task_ids: list[int] | None = None,
        seed: int = 0,
    ) -> tuple[JobProfile, JobExecution]:
        """Run *job* with profiling on and return (profile, execution).

        With ``map_task_ids`` given, only those map tasks run (sampling
        mode); otherwise the full job runs instrumented (complete
        profiling, the Fig 2.1 first-submission path).
        """
        if config is None:
            config = JobConfiguration()
        execution = self.engine.run_job(
            job,
            dataset,
            config,
            map_task_ids=map_task_ids,
            profile=True,
            profiling_overhead=self.overhead,
            seed=seed,
        )
        source = "sample" if map_task_ids is not None else "full"
        profile = build_profile(execution, config, source, dataset.split_bytes)
        return profile, execution
