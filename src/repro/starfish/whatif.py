"""The What-If (WIF) engine: analytical runtime prediction.

Given a job profile, a configuration, the cluster, and a data size, predict
the job's runtime (§2.3.1).  The model reconstructs per-task data-flow
volumes from the profile's selectivities and record-size statistics, runs
the same buffer/spill/merge/shuffle arithmetic as the execution engine, and
prices phases with the profile's *cost factors* — so predictions are exactly
as good as the profile is representative, which is the property PStorM's
matching quality is measured by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.mapper_engine import (
    COLLECT_CPU_FRACTION,
    COMPARE_CPU_FRACTION,
    HEAP_SORT_FRACTION,
    INTERMEDIATE_COMPRESSION_RATIO,
    META_BYTES_PER_RECORD,
    TASK_CLEANUP_SECONDS,
    TASK_SETUP_SECONDS,
)
from ..hadoop.reducer_engine import OUTPUT_COMPRESSION_RATIO
from .profile import JobProfile, SideProfile

__all__ = ["WhatIfEngine", "WhatIfPrediction"]


@dataclass(frozen=True)
class WhatIfPrediction:
    """Predicted execution shape of a virtual job run."""

    runtime_seconds: float
    map_task_seconds: float
    reduce_task_seconds: float
    num_map_tasks: int
    num_reduce_tasks: int
    map_phases: dict[str, float]
    reduce_phases: dict[str, float]


@dataclass(frozen=True)
class _VirtualMapTask:
    """Volumes and time of one representative virtual map task."""

    phases: dict[str, float]
    materialized_bytes: float
    spill_records: float

    @property
    def duration(self) -> float:
        return sum(self.phases.values())


class WhatIfEngine:
    """Analytical performance models over (profile, config, cluster, data)."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    def predict(
        self,
        profile: JobProfile,
        config: JobConfiguration,
        data_bytes: int | None = None,
    ) -> WhatIfPrediction:
        """Predict the runtime of the profiled job under *config*.

        Args:
            profile: the execution profile standing in for the job.
            config: the configuration being evaluated.
            data_bytes: input size of the virtual run; defaults to the
                size the profile was collected on.
        """
        if data_bytes is None:
            data_bytes = profile.input_bytes
        split_bytes = min(profile.split_bytes, data_bytes)
        num_maps = max(1, math.ceil(data_bytes / profile.split_bytes))

        map_task = self._virtual_map_task(profile.map_profile, config, split_bytes)
        map_slots = self.cluster.total_map_slots
        map_waves = math.ceil(num_maps / map_slots)
        map_makespan = map_waves * map_task.duration

        if profile.reduce_profile is None or config.num_reduce_tasks < 1:
            return WhatIfPrediction(
                runtime_seconds=map_makespan,
                map_task_seconds=map_task.duration,
                reduce_task_seconds=0.0,
                num_map_tasks=num_maps,
                num_reduce_tasks=0,
                map_phases=map_task.phases,
                reduce_phases={},
            )

        reduce_phases = self._virtual_reduce_task(
            profile.reduce_profile,
            config,
            total_materialized=map_task.materialized_bytes * num_maps,
            total_records=map_task.spill_records * num_maps,
            num_maps=num_maps,
        )
        reduce_task_time = sum(reduce_phases.values())

        reduce_slots = self.cluster.total_reduce_slots
        num_reducers = config.num_reduce_tasks
        reduce_waves = math.ceil(num_reducers / reduce_slots)

        slowstart_time = config.reduce_slowstart * map_makespan
        first_shuffle_end = max(
            map_makespan,
            slowstart_time + reduce_phases["SETUP"] + reduce_phases["SHUFFLE"],
        )
        post_shuffle = (
            reduce_phases["SORT"]
            + reduce_phases["REDUCE"]
            + reduce_phases["WRITE"]
            + reduce_phases["CLEANUP"]
        )
        finish = first_shuffle_end + post_shuffle
        if reduce_waves > 1:
            finish += (reduce_waves - 1) * reduce_task_time

        return WhatIfPrediction(
            runtime_seconds=max(map_makespan, finish),
            map_task_seconds=map_task.duration,
            reduce_task_seconds=reduce_task_time,
            num_map_tasks=num_maps,
            num_reduce_tasks=num_reducers,
            map_phases=map_task.phases,
            reduce_phases=reduce_phases,
        )

    # ------------------------------------------------------------------
    def _virtual_map_task(
        self, mp: SideProfile, config: JobConfiguration, split_bytes: int
    ) -> _VirtualMapTask:
        in_rec_bytes = max(1.0, mp.stat("INPUT_RECORD_BYTES", 100.0))
        input_records = split_bytes / in_rec_bytes
        out_bytes = split_bytes * mp.data_flow["MAP_SIZE_SEL"]
        out_records = input_records * mp.data_flow["MAP_PAIRS_SEL"]
        avg_rec = mp.stat("INTERMEDIATE_RECORD_BYTES")
        if avg_rec <= 0 and out_records > 0:
            avg_rec = out_bytes / out_records

        combine_applies = bool(config.use_combiner) and mp.stat("HAS_COMBINER") > 0
        if combine_applies:
            spill_records = out_records * mp.data_flow["COMBINE_PAIRS_SEL"]
            spill_bytes = out_bytes * mp.data_flow["COMBINE_SIZE_SEL"]
        else:
            spill_records = out_records
            spill_bytes = out_bytes

        if out_records > 0 and avg_rec > 0:
            sort_buffer = min(
                config.sort_buffer_bytes(),
                int(self.cluster.task_heap_bytes * HEAP_SORT_FRACTION),
            )
            record_buffer = int(sort_buffer * config.io_sort_record_percent)
            data_cap = (sort_buffer - record_buffer) * config.io_sort_spill_percent
            meta_cap = (
                record_buffer * config.io_sort_spill_percent / META_BYTES_PER_RECORD
            )
            records_per_spill = max(1.0, min(data_cap / avg_rec, meta_cap))
            num_spills = max(1, math.ceil(out_records / records_per_spill))
        else:
            records_per_spill = 1.0
            num_spills = 0
        merge_passes = config.merge_passes(num_spills)

        if config.compress_map_output:
            materialized = spill_bytes * INTERMEDIATE_COMPRESSION_RATIO
        else:
            materialized = spill_bytes

        framework_cpu = mp.stat("FRAMEWORK_CPU_COST", 350.0)
        read_s = split_bytes * mp.cost_factors["READ_HDFS_IO_COST"] / 1e9
        map_s = input_records * mp.cost_factors["MAP_CPU_COST"] / 1e9

        sort_compares = 0.0
        if num_spills > 0 and records_per_spill > 1:
            sort_compares = out_records * math.log2(records_per_spill)
        collect_s = (
            out_records * framework_cpu * COLLECT_CPU_FRACTION
            + sort_compares * framework_cpu * COMPARE_CPU_FRACTION
        ) / 1e9

        spill_cpu_ns = 0.0
        if combine_applies:
            spill_cpu_ns += out_records * mp.cost_factors["COMBINE_CPU_COST"]
        if config.compress_map_output:
            spill_cpu_ns += spill_bytes * mp.stat("COMPRESS_CPU_COST", 6.0)
        spill_s = (
            materialized * mp.cost_factors["WRITE_LOCAL_IO_COST"] + spill_cpu_ns
        ) / 1e9

        merge_s = (
            merge_passes
            * materialized
            * (
                mp.cost_factors["READ_LOCAL_IO_COST"]
                + mp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            / 1e9
        )
        if config.compress_map_output and merge_passes > 0:
            merge_s += (
                merge_passes
                * spill_bytes
                * (
                    mp.stat("DECOMPRESS_CPU_COST", 3.0)
                    + mp.stat("COMPRESS_CPU_COST", 6.0)
                )
                / 1e9
            )

        phases = {
            "SETUP": TASK_SETUP_SECONDS,
            "READ": read_s,
            "MAP": map_s,
            "COLLECT": collect_s,
            "SPILL": spill_s,
            "MERGE": merge_s,
            "CLEANUP": TASK_CLEANUP_SECONDS,
        }
        return _VirtualMapTask(
            phases=phases,
            materialized_bytes=materialized,
            spill_records=spill_records,
        )

    # ------------------------------------------------------------------
    def _virtual_reduce_task(
        self,
        rp: SideProfile,
        config: JobConfiguration,
        total_materialized: float,
        total_records: float,
        num_maps: int,
    ) -> dict[str, float]:
        num_reducers = max(1, config.num_reduce_tasks)
        skew = max(1.0, rp.stat("REDUCE_SKEW", 1.0))
        shuffle_bytes = total_materialized / num_reducers * skew
        records = total_records / num_reducers * skew

        if config.compress_map_output:
            plain_bytes = shuffle_bytes / INTERMEDIATE_COMPRESSION_RATIO
        else:
            plain_bytes = shuffle_bytes

        network = rp.stat("NETWORK_COST", 22.0)
        shuffle_s = shuffle_bytes * network / 1e9
        if config.compress_map_output:
            shuffle_s += plain_bytes * rp.stat("DECOMPRESS_CPU_COST", 3.0) / 1e9

        heap = self.cluster.task_heap_bytes
        buffer_bytes = heap * config.shuffle_input_buffer_percent
        merge_trigger = max(1.0, buffer_bytes * config.shuffle_merge_percent)
        overflow = max(0.0, plain_bytes - buffer_bytes)
        disk_segments = max(1, math.ceil(overflow / merge_trigger)) if overflow else 0
        disk_passes = config.merge_passes(disk_segments) if disk_segments else 0

        inmem_merges = 0
        if num_maps > 0:
            inmem_merges = max(
                math.ceil(num_maps / max(1, config.inmem_merge_threshold)),
                math.ceil(plain_bytes / merge_trigger) if plain_bytes else 0,
            )

        retained = heap * config.reduce_input_buffer_percent
        final_read = max(0.0, overflow - retained)
        framework_cpu = rp.stat("FRAMEWORK_CPU_COST", 350.0)
        compare_ns = framework_cpu * COMPARE_CPU_FRACTION
        sort_cpu_ns = 0.0
        if inmem_merges and records > 0:
            sort_cpu_ns = records * compare_ns * math.log2(
                max(2.0, records / max(1, inmem_merges))
            )
        sort_s = (
            disk_passes
            * overflow
            * (
                rp.cost_factors["READ_LOCAL_IO_COST"]
                + rp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            + final_read * rp.cost_factors["READ_LOCAL_IO_COST"]
            + sort_cpu_ns
        ) / 1e9

        reduce_s = records * rp.cost_factors["REDUCE_CPU_COST"] / 1e9

        records_per_group = max(1e-9, rp.stat("RECORDS_PER_GROUP", 1.0))
        groups = records / records_per_group
        out_records = groups * rp.stat("OUT_RECORDS_PER_GROUP", 1.0)
        out_bytes = out_records * rp.stat("OUTPUT_RECORD_BYTES", 0.0)
        if config.compress_output:
            write_bytes = out_bytes * OUTPUT_COMPRESSION_RATIO
            write_cpu_ns = out_bytes * rp.stat("COMPRESS_CPU_COST", 6.0)
        else:
            write_bytes = out_bytes
            write_cpu_ns = 0.0
        write_s = (
            write_bytes * rp.cost_factors["WRITE_HDFS_IO_COST"] + write_cpu_ns
        ) / 1e9

        return {
            "SETUP": TASK_SETUP_SECONDS,
            "SHUFFLE": shuffle_s,
            "SORT": sort_s,
            "REDUCE": reduce_s,
            "WRITE": write_s,
            "CLEANUP": TASK_CLEANUP_SECONDS,
        }
