"""The What-If (WIF) engine: analytical runtime prediction.

Given a job profile, a configuration, the cluster, and a data size, predict
the job's runtime (§2.3.1).  The model reconstructs per-task data-flow
volumes from the profile's selectivities and record-size statistics, runs
the same buffer/spill/merge/shuffle arithmetic as the execution engine, and
prices phases with the profile's *cost factors* — so predictions are exactly
as good as the profile is representative, which is the property PStorM's
matching quality is measured by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import CONFIGURATION_SPACE, JobConfiguration
from ..hadoop.mapper_engine import (
    COLLECT_CPU_FRACTION,
    COMPARE_CPU_FRACTION,
    HEAP_SORT_FRACTION,
    INTERMEDIATE_COMPRESSION_RATIO,
    META_BYTES_PER_RECORD,
    TASK_CLEANUP_SECONDS,
    TASK_SETUP_SECONDS,
)
from ..hadoop.reducer_engine import OUTPUT_COMPRESSION_RATIO
from ..observability import COUNT_BUCKETS, MetricsRegistry, get_registry
from .profile import JobProfile, SideProfile

__all__ = ["WhatIfEngine", "WhatIfPrediction", "BatchPrediction"]


@dataclass(frozen=True)
class WhatIfPrediction:
    """Predicted execution shape of a virtual job run."""

    runtime_seconds: float
    map_task_seconds: float
    reduce_task_seconds: float
    num_map_tasks: int
    num_reduce_tasks: int
    map_phases: dict[str, float]
    reduce_phases: dict[str, float]


@dataclass(frozen=True)
class BatchPrediction:
    """Predictions for a whole generation of candidate configurations.

    Every per-config field is a NumPy array of length ``len(self)``; the
    value at index ``i`` is bit-identical to the corresponding field of
    ``WhatIfEngine.predict(profile, configs[i], data_bytes)`` (the property
    tests in ``tests/test_whatif_batch.py`` enforce this).
    """

    runtime_seconds: np.ndarray
    map_task_seconds: np.ndarray
    reduce_task_seconds: np.ndarray
    num_map_tasks: int
    num_reduce_tasks: np.ndarray
    map_phases: dict[str, np.ndarray]
    reduce_phases: dict[str, np.ndarray]

    def __len__(self) -> int:
        return len(self.runtime_seconds)

    def prediction(self, index: int) -> WhatIfPrediction:
        """The scalar :class:`WhatIfPrediction` view of one candidate."""
        num_reducers = int(self.num_reduce_tasks[index])
        return WhatIfPrediction(
            runtime_seconds=float(self.runtime_seconds[index]),
            map_task_seconds=float(self.map_task_seconds[index]),
            reduce_task_seconds=float(self.reduce_task_seconds[index]),
            num_map_tasks=self.num_map_tasks,
            num_reduce_tasks=num_reducers,
            map_phases={k: float(v[index]) for k, v in self.map_phases.items()},
            reduce_phases=(
                {}
                if num_reducers < 1
                else {k: float(v[index]) for k, v in self.reduce_phases.items()}
            ),
        )


@dataclass(frozen=True)
class _VirtualMapTask:
    """Volumes and time of one representative virtual map task."""

    phases: dict[str, float]
    materialized_bytes: float
    spill_records: float

    @property
    def duration(self) -> float:
        return sum(self.phases.values())


class _ConfigColumns:
    """The candidate matrix: one float64/bool column per tuning parameter.

    Only the parameters the What-If model actually reads are extracted.
    Integer parameters are stored as float64 — all modelled values stay far
    below 2**53, so the representation is exact and arithmetic matches the
    scalar int/float mixing of :meth:`WhatIfEngine.predict` bit for bit.
    """

    __slots__ = (
        "n", "io_sort_mb", "io_sort_record_percent", "io_sort_spill_percent",
        "io_sort_factor", "use_combiner", "compress_map_output",
        "reduce_slowstart", "num_reduce_tasks", "shuffle_input_buffer_percent",
        "shuffle_merge_percent", "inmem_merge_threshold",
        "reduce_input_buffer_percent", "compress_output",
    )

    #: Candidate-matrix column index per attribute (Table 2.1 order), for
    #: :meth:`from_matrix`.  The one parameter the model never reads
    #: (``min.num.spills.for.combine``) stays in the matrix but is skipped.
    MATRIX_COLUMNS: dict[str, int] = {
        spec.attribute: j for j, spec in enumerate(CONFIGURATION_SPACE)
    }

    def __init__(self, configs: Sequence[JobConfiguration]) -> None:
        self.n = len(configs)

        def column(attribute: str, dtype) -> np.ndarray:
            return np.fromiter(
                (getattr(c, attribute) for c in configs), dtype=dtype, count=self.n
            )

        self.io_sort_mb = column("io_sort_mb", np.float64)
        self.io_sort_record_percent = column("io_sort_record_percent", np.float64)
        self.io_sort_spill_percent = column("io_sort_spill_percent", np.float64)
        self.io_sort_factor = column("io_sort_factor", np.float64)
        self.use_combiner = column("use_combiner", np.bool_)
        self.compress_map_output = column("compress_map_output", np.bool_)
        self.reduce_slowstart = column("reduce_slowstart", np.float64)
        self.num_reduce_tasks = column("num_reduce_tasks", np.float64)
        self.shuffle_input_buffer_percent = column(
            "shuffle_input_buffer_percent", np.float64
        )
        self.shuffle_merge_percent = column("shuffle_merge_percent", np.float64)
        self.inmem_merge_threshold = column("inmem_merge_threshold", np.float64)
        self.reduce_input_buffer_percent = column(
            "reduce_input_buffer_percent", np.float64
        )
        self.compress_output = column("compress_output", np.bool_)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "_ConfigColumns":
        """Build columns straight from an ``(n, 14)`` candidate matrix.

        The matrix stores one float64 column per parameter in Table 2.1
        order (booleans as 0.0/1.0), which is how the CBO generates whole
        candidate generations without materializing ``JobConfiguration``
        objects.  Values must already be legal (clamped).
        """
        self = cls.__new__(cls)
        self.n = len(matrix)
        index = cls.MATRIX_COLUMNS
        for attribute in cls.__slots__:
            if attribute == "n":
                continue
            column = np.ascontiguousarray(matrix[:, index[attribute]])
            if attribute in ("use_combiner", "compress_map_output", "compress_output"):
                column = column != 0.0
            setattr(self, attribute, column)
        return self


def _masked_log2(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``log2`` where *mask*, 0 elsewhere — computed with :func:`math.log2`.

    NumPy's SIMD ``np.log2`` differs from libm's ``log2`` in the last ulp
    for some inputs, which would break the batch == scalar bit-identity
    guarantee; transcendentals are a negligible fraction of the batch work,
    so they go through the exact scalar routine.
    """
    out = np.zeros_like(values)
    for i in np.nonzero(mask)[0]:
        out[i] = math.log2(values[i])
    return out


def _merge_passes_batch(segments: np.ndarray, factor: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`JobConfiguration.merge_passes` (element-exact)."""
    passes = np.zeros_like(segments)
    for i in np.nonzero(segments > 1)[0]:
        passes[i] = max(1, math.ceil(math.log(segments[i], factor[i])))
    return passes


def _phase_sum(phases: dict[str, np.ndarray], n: int) -> np.ndarray:
    """Sum phase arrays in dict order, mirroring ``sum(phases.values())``."""
    total = np.zeros(n)
    for values in phases.values():
        total = total + values
    return total


class WhatIfEngine:
    """Analytical performance models over (profile, config, cluster, data)."""

    def __init__(
        self, cluster: ClusterSpec, registry: MetricsRegistry | None = None
    ) -> None:
        self.cluster = cluster
        self.registry = registry

    # ------------------------------------------------------------------
    def predict(
        self,
        profile: JobProfile,
        config: JobConfiguration,
        data_bytes: int | None = None,
    ) -> WhatIfPrediction:
        """Predict the runtime of the profiled job under *config*.

        Args:
            profile: the execution profile standing in for the job.
            config: the configuration being evaluated.
            data_bytes: input size of the virtual run; defaults to the
                size the profile was collected on.
        """
        if data_bytes is None:
            data_bytes = profile.input_bytes
        split_bytes = min(profile.split_bytes, data_bytes)
        num_maps = max(1, math.ceil(data_bytes / profile.split_bytes))

        map_task = self._virtual_map_task(profile.map_profile, config, split_bytes)
        map_slots = self.cluster.total_map_slots
        map_waves = math.ceil(num_maps / map_slots)
        map_makespan = map_waves * map_task.duration

        if profile.reduce_profile is None or config.num_reduce_tasks < 1:
            return WhatIfPrediction(
                runtime_seconds=map_makespan,
                map_task_seconds=map_task.duration,
                reduce_task_seconds=0.0,
                num_map_tasks=num_maps,
                num_reduce_tasks=0,
                map_phases=map_task.phases,
                reduce_phases={},
            )

        reduce_phases = self._virtual_reduce_task(
            profile.reduce_profile,
            config,
            total_materialized=map_task.materialized_bytes * num_maps,
            total_records=map_task.spill_records * num_maps,
            num_maps=num_maps,
        )
        reduce_task_time = sum(reduce_phases.values())

        reduce_slots = self.cluster.total_reduce_slots
        num_reducers = config.num_reduce_tasks
        reduce_waves = math.ceil(num_reducers / reduce_slots)

        slowstart_time = config.reduce_slowstart * map_makespan
        first_shuffle_end = max(
            map_makespan,
            slowstart_time + reduce_phases["SETUP"] + reduce_phases["SHUFFLE"],
        )
        post_shuffle = (
            reduce_phases["SORT"]
            + reduce_phases["REDUCE"]
            + reduce_phases["WRITE"]
            + reduce_phases["CLEANUP"]
        )
        finish = first_shuffle_end + post_shuffle
        if reduce_waves > 1:
            finish += (reduce_waves - 1) * reduce_task_time

        return WhatIfPrediction(
            runtime_seconds=max(map_makespan, finish),
            map_task_seconds=map_task.duration,
            reduce_task_seconds=reduce_task_time,
            num_map_tasks=num_maps,
            num_reduce_tasks=num_reducers,
            map_phases=map_task.phases,
            reduce_phases=reduce_phases,
        )

    # ------------------------------------------------------------------
    def _virtual_map_task(
        self, mp: SideProfile, config: JobConfiguration, split_bytes: int
    ) -> _VirtualMapTask:
        in_rec_bytes = max(1.0, mp.stat("INPUT_RECORD_BYTES", 100.0))
        input_records = split_bytes / in_rec_bytes
        out_bytes = split_bytes * mp.data_flow["MAP_SIZE_SEL"]
        out_records = input_records * mp.data_flow["MAP_PAIRS_SEL"]
        avg_rec = mp.stat("INTERMEDIATE_RECORD_BYTES")
        if avg_rec <= 0 and out_records > 0:
            avg_rec = out_bytes / out_records

        combine_applies = bool(config.use_combiner) and mp.stat("HAS_COMBINER") > 0
        if combine_applies:
            spill_records = out_records * mp.data_flow["COMBINE_PAIRS_SEL"]
            spill_bytes = out_bytes * mp.data_flow["COMBINE_SIZE_SEL"]
        else:
            spill_records = out_records
            spill_bytes = out_bytes

        if out_records > 0 and avg_rec > 0:
            sort_buffer = min(
                config.sort_buffer_bytes(),
                int(self.cluster.task_heap_bytes * HEAP_SORT_FRACTION),
            )
            record_buffer = int(sort_buffer * config.io_sort_record_percent)
            data_cap = (sort_buffer - record_buffer) * config.io_sort_spill_percent
            meta_cap = (
                record_buffer * config.io_sort_spill_percent / META_BYTES_PER_RECORD
            )
            records_per_spill = max(1.0, min(data_cap / avg_rec, meta_cap))
            num_spills = max(1, math.ceil(out_records / records_per_spill))
        else:
            records_per_spill = 1.0
            num_spills = 0
        merge_passes = config.merge_passes(num_spills)

        if config.compress_map_output:
            materialized = spill_bytes * INTERMEDIATE_COMPRESSION_RATIO
        else:
            materialized = spill_bytes

        framework_cpu = mp.stat("FRAMEWORK_CPU_COST", 350.0)
        read_s = split_bytes * mp.cost_factors["READ_HDFS_IO_COST"] / 1e9
        map_s = input_records * mp.cost_factors["MAP_CPU_COST"] / 1e9

        sort_compares = 0.0
        if num_spills > 0 and records_per_spill > 1:
            sort_compares = out_records * math.log2(records_per_spill)
        collect_s = (
            out_records * framework_cpu * COLLECT_CPU_FRACTION
            + sort_compares * framework_cpu * COMPARE_CPU_FRACTION
        ) / 1e9

        spill_cpu_ns = 0.0
        if combine_applies:
            spill_cpu_ns += out_records * mp.cost_factors["COMBINE_CPU_COST"]
        if config.compress_map_output:
            spill_cpu_ns += spill_bytes * mp.stat("COMPRESS_CPU_COST", 6.0)
        spill_s = (
            materialized * mp.cost_factors["WRITE_LOCAL_IO_COST"] + spill_cpu_ns
        ) / 1e9

        merge_s = (
            merge_passes
            * materialized
            * (
                mp.cost_factors["READ_LOCAL_IO_COST"]
                + mp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            / 1e9
        )
        if config.compress_map_output and merge_passes > 0:
            merge_s += (
                merge_passes
                * spill_bytes
                * (
                    mp.stat("DECOMPRESS_CPU_COST", 3.0)
                    + mp.stat("COMPRESS_CPU_COST", 6.0)
                )
                / 1e9
            )

        phases = {
            "SETUP": TASK_SETUP_SECONDS,
            "READ": read_s,
            "MAP": map_s,
            "COLLECT": collect_s,
            "SPILL": spill_s,
            "MERGE": merge_s,
            "CLEANUP": TASK_CLEANUP_SECONDS,
        }
        return _VirtualMapTask(
            phases=phases,
            materialized_bytes=materialized,
            spill_records=spill_records,
        )

    # ------------------------------------------------------------------
    def _virtual_reduce_task(
        self,
        rp: SideProfile,
        config: JobConfiguration,
        total_materialized: float,
        total_records: float,
        num_maps: int,
    ) -> dict[str, float]:
        num_reducers = max(1, config.num_reduce_tasks)
        skew = max(1.0, rp.stat("REDUCE_SKEW", 1.0))
        shuffle_bytes = total_materialized / num_reducers * skew
        records = total_records / num_reducers * skew

        if config.compress_map_output:
            plain_bytes = shuffle_bytes / INTERMEDIATE_COMPRESSION_RATIO
        else:
            plain_bytes = shuffle_bytes

        network = rp.stat("NETWORK_COST", 22.0)
        shuffle_s = shuffle_bytes * network / 1e9
        if config.compress_map_output:
            shuffle_s += plain_bytes * rp.stat("DECOMPRESS_CPU_COST", 3.0) / 1e9

        heap = self.cluster.task_heap_bytes
        buffer_bytes = heap * config.shuffle_input_buffer_percent
        merge_trigger = max(1.0, buffer_bytes * config.shuffle_merge_percent)
        overflow = max(0.0, plain_bytes - buffer_bytes)
        disk_segments = max(1, math.ceil(overflow / merge_trigger)) if overflow else 0
        disk_passes = config.merge_passes(disk_segments) if disk_segments else 0

        inmem_merges = 0
        if num_maps > 0:
            inmem_merges = max(
                math.ceil(num_maps / max(1, config.inmem_merge_threshold)),
                math.ceil(plain_bytes / merge_trigger) if plain_bytes else 0,
            )

        retained = heap * config.reduce_input_buffer_percent
        final_read = max(0.0, overflow - retained)
        framework_cpu = rp.stat("FRAMEWORK_CPU_COST", 350.0)
        compare_ns = framework_cpu * COMPARE_CPU_FRACTION
        sort_cpu_ns = 0.0
        if inmem_merges and records > 0:
            sort_cpu_ns = records * compare_ns * math.log2(
                max(2.0, records / max(1, inmem_merges))
            )
        sort_s = (
            disk_passes
            * overflow
            * (
                rp.cost_factors["READ_LOCAL_IO_COST"]
                + rp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            + final_read * rp.cost_factors["READ_LOCAL_IO_COST"]
            + sort_cpu_ns
        ) / 1e9

        reduce_s = records * rp.cost_factors["REDUCE_CPU_COST"] / 1e9

        records_per_group = max(1e-9, rp.stat("RECORDS_PER_GROUP", 1.0))
        groups = records / records_per_group
        out_records = groups * rp.stat("OUT_RECORDS_PER_GROUP", 1.0)
        out_bytes = out_records * rp.stat("OUTPUT_RECORD_BYTES", 0.0)
        if config.compress_output:
            write_bytes = out_bytes * OUTPUT_COMPRESSION_RATIO
            write_cpu_ns = out_bytes * rp.stat("COMPRESS_CPU_COST", 6.0)
        else:
            write_bytes = out_bytes
            write_cpu_ns = 0.0
        write_s = (
            write_bytes * rp.cost_factors["WRITE_HDFS_IO_COST"] + write_cpu_ns
        ) / 1e9

        return {
            "SETUP": TASK_SETUP_SECONDS,
            "SHUFFLE": shuffle_s,
            "SORT": sort_s,
            "REDUCE": reduce_s,
            "WRITE": write_s,
            "CLEANUP": TASK_CLEANUP_SECONDS,
        }

    # ------------------------------------------------------------------
    # Batched prediction
    # ------------------------------------------------------------------
    def predict_batch(
        self,
        profile: JobProfile,
        configs: Iterable[JobConfiguration],
        data_bytes: int | None = None,
    ) -> BatchPrediction:
        """Predict a whole generation of configurations column-wise.

        Semantically equivalent to ``[self.predict(profile, c, data_bytes)
        for c in configs]`` — and bit-identical to it, field by field — but
        the spill/merge/shuffle arithmetic runs once over NumPy columns of
        the candidate matrix instead of once per configuration, which is
        what makes the CBO's generation scoring cheap.
        """
        configs = list(configs)
        return self._predict_columns(profile, _ConfigColumns(configs), data_bytes)

    def predict_matrix(
        self,
        profile: JobProfile,
        matrix: np.ndarray,
        data_bytes: int | None = None,
    ) -> BatchPrediction:
        """:meth:`predict_batch` over a raw ``(n, 14)`` candidate matrix.

        Columns follow ``_ConfigColumns.MATRIX_COLUMNS`` (Table 2.1 order,
        booleans as 0.0/1.0, values already clamped).  This is the CBO's
        hot entry point: whole generations are priced without ever
        materializing per-candidate ``JobConfiguration`` objects.
        """
        return self._predict_columns(
            profile, _ConfigColumns.from_matrix(matrix), data_bytes
        )

    def _predict_columns(
        self,
        profile: JobProfile,
        cols: _ConfigColumns,
        data_bytes: int | None,
    ) -> BatchPrediction:
        n = cols.n
        registry = get_registry(self.registry)
        registry.counter(
            "whatif_batches_total", "predict_batch calls"
        ).inc()
        registry.counter(
            "whatif_batch_predictions_total",
            "configurations priced through the batched What-If path",
        ).inc(n)
        registry.histogram(
            "whatif_batch_size",
            "configurations per predict_batch call",
            buckets=COUNT_BUCKETS,
        ).observe(n)
        if data_bytes is None:
            data_bytes = profile.input_bytes
        split_bytes = min(profile.split_bytes, data_bytes)
        num_maps = max(1, math.ceil(data_bytes / profile.split_bytes))

        map_phases, materialized, spill_records = self._virtual_map_batch(
            profile.map_profile, cols, split_bytes
        )
        map_duration = _phase_sum(map_phases, n)
        map_slots = self.cluster.total_map_slots
        map_waves = math.ceil(num_maps / map_slots)
        map_makespan = map_waves * map_duration

        if profile.reduce_profile is None:
            return BatchPrediction(
                runtime_seconds=map_makespan,
                map_task_seconds=map_duration,
                reduce_task_seconds=np.zeros(n),
                num_map_tasks=num_maps,
                num_reduce_tasks=np.zeros(n, dtype=np.int64),
                map_phases=map_phases,
                reduce_phases={},
            )

        reduce_phases = self._virtual_reduce_batch(
            profile.reduce_profile,
            cols,
            total_materialized=materialized * num_maps,
            total_records=spill_records * num_maps,
            num_maps=num_maps,
        )
        reduce_task_time = _phase_sum(reduce_phases, n)

        reduce_slots = self.cluster.total_reduce_slots
        reduce_waves = np.ceil(cols.num_reduce_tasks / reduce_slots)

        slowstart_time = cols.reduce_slowstart * map_makespan
        first_shuffle_end = np.maximum(
            map_makespan,
            slowstart_time + reduce_phases["SETUP"] + reduce_phases["SHUFFLE"],
        )
        post_shuffle = (
            reduce_phases["SORT"]
            + reduce_phases["REDUCE"]
            + reduce_phases["WRITE"]
            + reduce_phases["CLEANUP"]
        )
        finish = first_shuffle_end + post_shuffle
        finish = np.where(
            reduce_waves > 1,
            finish + (reduce_waves - 1) * reduce_task_time,
            finish,
        )

        # mapred.reduce.tasks < 1 cannot pass JobConfiguration validation
        # today, but predict() defines the map-only fallback, so mirror it.
        map_only = cols.num_reduce_tasks < 1
        return BatchPrediction(
            runtime_seconds=np.where(
                map_only, map_makespan, np.maximum(map_makespan, finish)
            ),
            map_task_seconds=map_duration,
            reduce_task_seconds=np.where(map_only, 0.0, reduce_task_time),
            num_map_tasks=num_maps,
            num_reduce_tasks=np.where(
                map_only, 0, cols.num_reduce_tasks
            ).astype(np.int64),
            map_phases=map_phases,
            reduce_phases=reduce_phases,
        )

    # ------------------------------------------------------------------
    def _virtual_map_batch(
        self, mp: SideProfile, cols: _ConfigColumns, split_bytes: int
    ) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Column-wise :meth:`_virtual_map_task` over the candidate matrix.

        Every expression mirrors the scalar method's operation tree exactly
        (same association order, same truncation points), so each column
        element is bit-identical to the scalar result for that config.
        """
        n = cols.n
        in_rec_bytes = max(1.0, mp.stat("INPUT_RECORD_BYTES", 100.0))
        input_records = split_bytes / in_rec_bytes
        out_bytes = split_bytes * mp.data_flow["MAP_SIZE_SEL"]
        out_records = input_records * mp.data_flow["MAP_PAIRS_SEL"]
        avg_rec = mp.stat("INTERMEDIATE_RECORD_BYTES")
        if avg_rec <= 0 and out_records > 0:
            avg_rec = out_bytes / out_records

        combine_applies = cols.use_combiner & (mp.stat("HAS_COMBINER") > 0)
        spill_records = np.where(
            combine_applies, out_records * mp.data_flow["COMBINE_PAIRS_SEL"],
            out_records,
        )
        spill_bytes = np.where(
            combine_applies, out_bytes * mp.data_flow["COMBINE_SIZE_SEL"],
            out_bytes,
        )

        if out_records > 0 and avg_rec > 0:
            sort_buffer = np.minimum(
                cols.io_sort_mb * 1024 * 1024,
                int(self.cluster.task_heap_bytes * HEAP_SORT_FRACTION),
            )
            record_buffer = np.trunc(sort_buffer * cols.io_sort_record_percent)
            data_cap = (sort_buffer - record_buffer) * cols.io_sort_spill_percent
            meta_cap = (
                record_buffer * cols.io_sort_spill_percent / META_BYTES_PER_RECORD
            )
            records_per_spill = np.maximum(
                1.0, np.minimum(data_cap / avg_rec, meta_cap)
            )
            num_spills = np.maximum(
                1.0, np.ceil(out_records / records_per_spill)
            )
        else:
            records_per_spill = np.ones(n)
            num_spills = np.zeros(n)
        merge_passes = _merge_passes_batch(num_spills, cols.io_sort_factor)

        materialized = np.where(
            cols.compress_map_output,
            spill_bytes * INTERMEDIATE_COMPRESSION_RATIO,
            spill_bytes,
        )

        framework_cpu = mp.stat("FRAMEWORK_CPU_COST", 350.0)
        read_s = split_bytes * mp.cost_factors["READ_HDFS_IO_COST"] / 1e9
        map_s = input_records * mp.cost_factors["MAP_CPU_COST"] / 1e9

        sort_compares = out_records * _masked_log2(
            records_per_spill, (num_spills > 0) & (records_per_spill > 1)
        )
        collect_s = (
            out_records * framework_cpu * COLLECT_CPU_FRACTION
            + sort_compares * framework_cpu * COMPARE_CPU_FRACTION
        ) / 1e9

        spill_cpu_ns = np.where(
            combine_applies, out_records * mp.cost_factors["COMBINE_CPU_COST"], 0.0
        )
        spill_cpu_ns = np.where(
            cols.compress_map_output,
            spill_cpu_ns + spill_bytes * mp.stat("COMPRESS_CPU_COST", 6.0),
            spill_cpu_ns,
        )
        spill_s = (
            materialized * mp.cost_factors["WRITE_LOCAL_IO_COST"] + spill_cpu_ns
        ) / 1e9

        merge_s = (
            merge_passes
            * materialized
            * (
                mp.cost_factors["READ_LOCAL_IO_COST"]
                + mp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            / 1e9
        )
        merge_s = np.where(
            cols.compress_map_output & (merge_passes > 0),
            merge_s
            + merge_passes
            * spill_bytes
            * (
                mp.stat("DECOMPRESS_CPU_COST", 3.0)
                + mp.stat("COMPRESS_CPU_COST", 6.0)
            )
            / 1e9,
            merge_s,
        )

        phases = {
            "SETUP": np.full(n, TASK_SETUP_SECONDS),
            "READ": np.full(n, read_s),
            "MAP": np.full(n, map_s),
            "COLLECT": collect_s,
            "SPILL": spill_s,
            "MERGE": merge_s,
            "CLEANUP": np.full(n, TASK_CLEANUP_SECONDS),
        }
        return phases, materialized, spill_records

    # ------------------------------------------------------------------
    def _virtual_reduce_batch(
        self,
        rp: SideProfile,
        cols: _ConfigColumns,
        total_materialized: np.ndarray,
        total_records: np.ndarray,
        num_maps: int,
    ) -> dict[str, np.ndarray]:
        """Column-wise :meth:`_virtual_reduce_task` (same mirroring rules)."""
        n = cols.n
        num_reducers = np.maximum(1.0, cols.num_reduce_tasks)
        skew = max(1.0, rp.stat("REDUCE_SKEW", 1.0))
        shuffle_bytes = total_materialized / num_reducers * skew
        records = total_records / num_reducers * skew

        plain_bytes = np.where(
            cols.compress_map_output,
            shuffle_bytes / INTERMEDIATE_COMPRESSION_RATIO,
            shuffle_bytes,
        )

        network = rp.stat("NETWORK_COST", 22.0)
        shuffle_s = shuffle_bytes * network / 1e9
        shuffle_s = np.where(
            cols.compress_map_output,
            shuffle_s + plain_bytes * rp.stat("DECOMPRESS_CPU_COST", 3.0) / 1e9,
            shuffle_s,
        )

        heap = self.cluster.task_heap_bytes
        buffer_bytes = heap * cols.shuffle_input_buffer_percent
        merge_trigger = np.maximum(1.0, buffer_bytes * cols.shuffle_merge_percent)
        overflow = np.maximum(0.0, plain_bytes - buffer_bytes)
        disk_segments = np.where(
            overflow > 0,
            np.maximum(1.0, np.ceil(overflow / merge_trigger)),
            0.0,
        )
        disk_passes = _merge_passes_batch(disk_segments, cols.io_sort_factor)

        inmem_merges = np.zeros(n)
        if num_maps > 0:
            inmem_merges = np.maximum(
                np.ceil(num_maps / np.maximum(1.0, cols.inmem_merge_threshold)),
                np.where(
                    plain_bytes > 0, np.ceil(plain_bytes / merge_trigger), 0.0
                ),
            )

        retained = heap * cols.reduce_input_buffer_percent
        final_read = np.maximum(0.0, overflow - retained)
        framework_cpu = rp.stat("FRAMEWORK_CPU_COST", 350.0)
        compare_ns = framework_cpu * COMPARE_CPU_FRACTION
        sort_log_arg = np.maximum(2.0, records / np.maximum(1.0, inmem_merges))
        sort_cpu_ns = records * compare_ns * _masked_log2(
            sort_log_arg, (inmem_merges > 0) & (records > 0)
        )
        sort_s = (
            disk_passes
            * overflow
            * (
                rp.cost_factors["READ_LOCAL_IO_COST"]
                + rp.cost_factors["WRITE_LOCAL_IO_COST"]
            )
            + final_read * rp.cost_factors["READ_LOCAL_IO_COST"]
            + sort_cpu_ns
        ) / 1e9

        reduce_s = records * rp.cost_factors["REDUCE_CPU_COST"] / 1e9

        records_per_group = max(1e-9, rp.stat("RECORDS_PER_GROUP", 1.0))
        groups = records / records_per_group
        out_records = groups * rp.stat("OUT_RECORDS_PER_GROUP", 1.0)
        out_bytes = out_records * rp.stat("OUTPUT_RECORD_BYTES", 0.0)
        write_bytes = np.where(
            cols.compress_output, out_bytes * OUTPUT_COMPRESSION_RATIO, out_bytes
        )
        write_cpu_ns = np.where(
            cols.compress_output, out_bytes * rp.stat("COMPRESS_CPU_COST", 6.0), 0.0
        )
        write_s = (
            write_bytes * rp.cost_factors["WRITE_HDFS_IO_COST"] + write_cpu_ns
        ) / 1e9

        return {
            "SETUP": np.full(n, TASK_SETUP_SECONDS),
            "SHUFFLE": shuffle_s,
            "SORT": sort_s,
            "REDUCE": reduce_s,
            "WRITE": write_s,
            "CLEANUP": np.full(n, TASK_CLEANUP_SECONDS),
        }
