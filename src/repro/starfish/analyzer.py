"""Bottleneck analysis over execution profiles.

The Starfish visualizer the thesis screenshots doubles as a diagnosis
tool: which phase dominates a job, and which configuration parameters
move that phase.  This module reproduces that diagnosis layer — it reads
a :class:`JobProfile` (or an execution) and reports the dominant phases
with the Table 2.1 parameters that govern each, which is also a readable
explanation of *why* the CBO's recommendation looks the way it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profile import JobProfile

__all__ = ["Bottleneck", "analyze_profile"]

#: Phase -> the Table 2.1 parameters that most directly move it.
_PHASE_LEVERS: dict[str, tuple[str, ...]] = {
    "READ": (),
    "MAP": ("mapreduce.combine.class",),
    "COLLECT": ("io.sort.mb", "io.sort.record.percent", "io.sort.spill.percent"),
    "SPILL": ("io.sort.mb", "mapred.compress.map.output", "mapreduce.combine.class"),
    "MERGE": ("io.sort.factor", "io.sort.mb"),
    "SHUFFLE": ("mapred.reduce.tasks", "mapred.compress.map.output",
                "mapred.reduce.slowstart.completed.maps"),
    "SORT": ("mapred.reduce.tasks", "mapred.job.shuffle.input.buffer.percent",
             "mapred.job.shuffle.merge.percent", "io.sort.factor"),
    "REDUCE": ("mapred.reduce.tasks",),
    "WRITE": ("mapred.output.compress", "mapred.reduce.tasks"),
    "SETUP": ("mapred.reduce.tasks",),
    "CLEANUP": (),
}


@dataclass(frozen=True)
class Bottleneck:
    """One diagnosed bottleneck."""

    side: str
    phase: str
    seconds_per_task: float
    share: float
    levers: tuple[str, ...]

    def render(self) -> str:
        lever_text = ", ".join(self.levers) if self.levers else "(data/cluster bound)"
        return (
            f"{self.side}:{self.phase} — {self.seconds_per_task:.1f} s/task "
            f"({self.share:.0%} of the side) — tune: {lever_text}"
        )


def analyze_profile(profile: JobProfile, top_k: int = 3) -> list[Bottleneck]:
    """Rank the profile's phases by their share of task time.

    Phases from both sides compete in one ranking, each weighted by its
    share *within its side* so single-reducer jobs (whose reduce phases
    are enormous in absolute seconds) don't drown out map-side issues.
    """
    bottlenecks: list[Bottleneck] = []
    sides = [("map", profile.map_profile)]
    if profile.reduce_profile is not None:
        sides.append(("reduce", profile.reduce_profile))

    for side, side_profile in sides:
        total = sum(side_profile.phase_times.values())
        if total <= 0:
            continue
        for phase, seconds in side_profile.phase_times.items():
            if phase in ("SETUP", "CLEANUP"):
                continue
            bottlenecks.append(
                Bottleneck(
                    side=side,
                    phase=phase,
                    seconds_per_task=seconds,
                    share=seconds / total,
                    levers=_PHASE_LEVERS.get(phase, ()),
                )
            )
    bottlenecks.sort(key=lambda b: -b.share)
    return bottlenecks[:top_k]
