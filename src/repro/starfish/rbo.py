"""The rule-based optimizer (Appendix B).

A transcription of the thesis's hand-built RBO: five rules drawn from
Hadoop tuning folklore, triggered by simple diagnostics over an execution
profile (we feed it the 1-task sample profile) and the cluster shape.  As
the paper stresses, these heuristics carry no guarantee — Fig 6.3's
inverted-index case shows the RBO *degrading* performance — which is the
motivation for cost-based tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from .profile import JobProfile

__all__ = ["RuleBasedOptimizer", "RboDecision"]


@dataclass(frozen=True)
class RboDecision:
    """An RBO recommendation plus the rules that fired."""

    config: JobConfiguration
    fired_rules: tuple[str, ...]


@dataclass
class RuleBasedOptimizer:
    """Applies the Appendix B rules to a sample profile."""

    cluster: ClusterSpec
    #: io.sort.mb ceiling: with 300 MB task heaps, experts keep the sort
    #: buffer well under the heap.
    io_sort_mb_cap: int = 200

    def recommend(self, profile: JobProfile) -> RboDecision:
        """Derive a configuration from the Appendix B rule set."""
        mp = profile.map_profile
        fired: list[str] = []
        config = JobConfiguration()

        map_size_sel = mp.data_flow["MAP_SIZE_SEL"]
        intermediate_rec = mp.stat("INTERMEDIATE_RECORD_BYTES")

        # Rule: mapred.compress.map.output — compress when intermediate
        # data is non-negligible or larger than the input, or records are
        # large (e.g. CompositeInputFormat joins).
        if map_size_sel >= 0.9 or intermediate_rec >= 100:
            config = config.with_params(compress_map_output=True)
            fired.append("compress-map-output")

        # Rule: io.sort.mb — raise the buffer for jobs with larger
        # size/number of intermediate records than input records.
        map_out_mb_per_split = (
            profile.split_bytes * map_size_sel / (1024 * 1024)
        )
        if map_out_mb_per_split > 0.5 * config.io_sort_mb:
            new_size = min(self.io_sort_mb_cap, int(map_out_mb_per_split * 1.2) + 1)
            if new_size > config.io_sort_mb:
                config = config.with_params(io_sort_mb=new_size)
                fired.append("io-sort-mb")

        # Rule: io.sort.record.percent — the folklore version is blunt:
        # "small records need much more meta-data space, large records
        # much less".  (The *optimal* share would be 16/(16+record size);
        # rules of thumb overshoot, which is part of why RBOs misfire —
        # the paper's cross-parameter-interaction discussion in §2.2.)
        if 0 < intermediate_rec <= 32:
            config = config.with_params(io_sort_record_percent=0.3)
            fired.append("io-sort-record-percent")
        elif intermediate_rec > 200:
            config = config.with_params(io_sort_record_percent=0.02)
            fired.append("io-sort-record-percent")

        # Rule: combiner usage — always enable a job-defined combiner
        # (associative/commutative reduce assumed by the rule).
        if mp.stat("HAS_COMBINER") > 0:
            config = config.with_params(use_combiner=True)
            fired.append("combiner")

        # Rule: mapred.reduce.tasks — 90% of the cluster's reduce slots,
        # leaving headroom for re-executed failures.
        if profile.reduce_profile is not None:
            reducers = max(1, int(0.9 * self.cluster.total_reduce_slots))
            config = config.with_params(num_reduce_tasks=reducers)
            fired.append("reduce-tasks")

        return RboDecision(config=config, fired_rules=tuple(fired))
