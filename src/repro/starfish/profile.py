"""Starfish execution profiles.

An execution profile captures, per task side, the three ingredient families
of the Starfish What-If models (§4.1): **data flow statistics** (Table 4.1
selectivities plus the record-size statistics needed to reconstruct
volumes), **cost factors** (Table 4.2 per-byte / per-record costs), and the
observed per-phase timings.  A :class:`JobProfile` bundles a map-side and a
reduce-side profile; profile *composition* — map side from one job, reduce
side from another — is the mechanism PStorM uses to serve previously
unseen jobs (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "SideProfile",
    "JobProfile",
    "MAP_DATA_FLOW_FEATURES",
    "REDUCE_DATA_FLOW_FEATURES",
    "MAP_COST_FEATURES",
    "REDUCE_COST_FEATURES",
    "MAP_STATISTICS",
    "REDUCE_STATISTICS",
]

#: Table 4.1 data flow statistics, split by the side they describe.
MAP_DATA_FLOW_FEATURES: tuple[str, ...] = (
    "MAP_SIZE_SEL",
    "MAP_PAIRS_SEL",
    "COMBINE_SIZE_SEL",
    "COMBINE_PAIRS_SEL",
)
REDUCE_DATA_FLOW_FEATURES: tuple[str, ...] = (
    "RED_SIZE_SEL",
    "RED_PAIRS_SEL",
)

#: Table 4.2 cost factors, split by side (READ_LOCAL appears on both: map
#: merge passes read local disk, and so do reduce-side merges).
MAP_COST_FEATURES: tuple[str, ...] = (
    "READ_HDFS_IO_COST",
    "READ_LOCAL_IO_COST",
    "WRITE_LOCAL_IO_COST",
    "MAP_CPU_COST",
    "COMBINE_CPU_COST",
)
REDUCE_COST_FEATURES: tuple[str, ...] = (
    "READ_LOCAL_IO_COST",
    "WRITE_LOCAL_IO_COST",
    "WRITE_HDFS_IO_COST",
    "REDUCE_CPU_COST",
)

#: Additional statistics the What-If engine needs to reconstruct volumes.
MAP_STATISTICS: tuple[str, ...] = (
    "INPUT_RECORD_BYTES",
    "INTERMEDIATE_RECORD_BYTES",
    "FRAMEWORK_CPU_COST",
    "NETWORK_COST",
    "COMPRESS_CPU_COST",
    "DECOMPRESS_CPU_COST",
    "HAS_COMBINER",
)
REDUCE_STATISTICS: tuple[str, ...] = (
    "RECORDS_PER_GROUP",
    "OUT_RECORDS_PER_GROUP",
    "OUTPUT_RECORD_BYTES",
    "REDUCE_SKEW",
    "FRAMEWORK_CPU_COST",
    "NETWORK_COST",
    "COMPRESS_CPU_COST",
    "DECOMPRESS_CPU_COST",
)


@dataclass(frozen=True)
class SideProfile:
    """One side (map or reduce) of an execution profile.

    Attributes:
        side: ``"map"`` or ``"reduce"``.
        data_flow: Table 4.1 selectivities for this side.
        cost_factors: Table 4.2 costs for this side (ns/byte or ns/record).
        statistics: auxiliary statistics for What-If volume reconstruction.
        phase_times: mean per-task phase durations observed (seconds).
        num_tasks: number of profiled tasks that produced these averages.
    """

    side: str
    data_flow: Mapping[str, float]
    cost_factors: Mapping[str, float]
    statistics: Mapping[str, float]
    phase_times: Mapping[str, float]
    num_tasks: int

    def __post_init__(self) -> None:
        if self.side not in ("map", "reduce"):
            raise ValueError("side must be 'map' or 'reduce'")
        expected = (
            MAP_DATA_FLOW_FEATURES if self.side == "map"
            else REDUCE_DATA_FLOW_FEATURES
        )
        missing = set(expected) - set(self.data_flow)
        if missing:
            raise ValueError(f"{self.side} profile missing {sorted(missing)}")

    def data_flow_vector(self) -> list[float]:
        """Selectivities in canonical order (the matcher's dynamic vector)."""
        names = (
            MAP_DATA_FLOW_FEATURES if self.side == "map"
            else REDUCE_DATA_FLOW_FEATURES
        )
        return [float(self.data_flow[name]) for name in names]

    def cost_vector(self) -> list[float]:
        """Cost factors in canonical order (the fallback filter's vector)."""
        names = (
            MAP_COST_FEATURES if self.side == "map" else REDUCE_COST_FEATURES
        )
        return [float(self.cost_factors.get(name, 0.0)) for name in names]

    def stat(self, name: str, default: float = 0.0) -> float:
        return float(self.statistics.get(name, default))

    def to_dict(self) -> dict[str, Any]:
        return {
            "side": self.side,
            "data_flow": dict(self.data_flow),
            "cost_factors": dict(self.cost_factors),
            "statistics": dict(self.statistics),
            "phase_times": dict(self.phase_times),
            "num_tasks": self.num_tasks,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SideProfile":
        return cls(
            side=payload["side"],
            data_flow=dict(payload["data_flow"]),
            cost_factors=dict(payload["cost_factors"]),
            statistics=dict(payload["statistics"]),
            phase_times=dict(payload["phase_times"]),
            num_tasks=int(payload["num_tasks"]),
        )


@dataclass(frozen=True)
class JobProfile:
    """A complete Starfish job profile.

    Attributes:
        job_name: name of the job the profile was collected from (for a
            composite profile, a synthesized name).
        dataset_name: dataset of the collecting run.
        input_bytes: input data size of the collecting run — the matcher's
            tie-break key (§4.3, Fig 4.6).
        split_bytes: HDFS split size during collection.
        num_map_tasks / num_reduce_tasks: shape of the collecting run.
        map_profile: map-side profile.
        reduce_profile: reduce-side profile, or None for map-only jobs.
        source: ``"full"``, ``"sample"``, or ``"composite"``.
    """

    job_name: str
    dataset_name: str
    input_bytes: int
    split_bytes: int
    num_map_tasks: int
    num_reduce_tasks: int
    map_profile: SideProfile
    reduce_profile: SideProfile | None
    source: str = "full"

    @property
    def has_reduce(self) -> bool:
        return self.reduce_profile is not None

    def compose_with(self, reduce_donor: "JobProfile") -> "JobProfile":
        """Composite profile: this job's map side + *reduce_donor*'s reduce.

        Valid because map and reduce task populations are independent
        (§4.3): a job profile is two independent sub-profiles.
        """
        return JobProfile(
            job_name=f"composite({self.job_name}|{reduce_donor.job_name})",
            dataset_name=self.dataset_name,
            input_bytes=self.input_bytes,
            split_bytes=self.split_bytes,
            num_map_tasks=self.num_map_tasks,
            num_reduce_tasks=reduce_donor.num_reduce_tasks,
            map_profile=self.map_profile,
            reduce_profile=reduce_donor.reduce_profile,
            source="composite",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_name": self.job_name,
            "dataset_name": self.dataset_name,
            "input_bytes": self.input_bytes,
            "split_bytes": self.split_bytes,
            "num_map_tasks": self.num_map_tasks,
            "num_reduce_tasks": self.num_reduce_tasks,
            "map_profile": self.map_profile.to_dict(),
            "reduce_profile": (
                self.reduce_profile.to_dict() if self.reduce_profile else None
            ),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobProfile":
        reduce_payload = payload.get("reduce_profile")
        return cls(
            job_name=payload["job_name"],
            dataset_name=payload["dataset_name"],
            input_bytes=int(payload["input_bytes"]),
            split_bytes=int(payload["split_bytes"]),
            num_map_tasks=int(payload["num_map_tasks"]),
            num_reduce_tasks=int(payload["num_reduce_tasks"]),
            map_profile=SideProfile.from_dict(payload["map_profile"]),
            reduce_profile=(
                SideProfile.from_dict(reduce_payload) if reduce_payload else None
            ),
            source=payload.get("source", "full"),
        )
