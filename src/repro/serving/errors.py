"""Typed errors of the tuning service's admission boundary."""

from __future__ import annotations

__all__ = ["ServingError", "ServiceOverloadError", "ServiceClosedError"]


class ServingError(RuntimeError):
    """Base class of tuning-service errors."""


class ServiceOverloadError(ServingError):
    """The service refused a request at admission (load shedding).

    Attributes:
        reason: why the request was shed — ``"queue-full"`` (depth
            crossed the shed watermark) or ``"rate-limited"`` (the
            tenant's token bucket is empty).
        retry_after_seconds: hint for when a retry is likely to be
            admitted, on the service's clock.
        tenant: the tenant whose request was refused.
    """

    def __init__(
        self,
        reason: str,
        retry_after_seconds: float,
        tenant: str = "default",
    ) -> None:
        super().__init__(
            f"request from tenant {tenant!r} shed ({reason}); "
            f"retry after {retry_after_seconds:.3f}s"
        )
        self.reason = reason
        self.retry_after_seconds = float(retry_after_seconds)
        self.tenant = tenant


class ServiceClosedError(ServingError):
    """A request arrived while the service was not accepting work."""
