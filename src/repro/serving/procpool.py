"""Multi-process serving: worker processes over the shared-memory index.

The GIL caps the thread frontend of :mod:`repro.serving.service` at one
core of matcher/CBO work no matter how many workers it starts.  This
module is the escape hatch: N worker *processes*, each running its own
read-only PStorM pipeline, all probing the same columnar
:class:`~repro.core.match_index.MatchIndex` matrices through
``multiprocessing.shared_memory`` (:mod:`repro.core.shm_index`) — one
copy of the matrices per generation, zero-copy numpy views per worker.

Ownership is strictly single-writer:

- the **parent** owns the authoritative profile store, the result cache,
  and the :class:`~repro.core.shm_index.SharedIndexPublisher`; it serves
  cache hits itself (no IPC) and is the only process that ever writes;
- each **worker** owns a :class:`SnapshotStoreProxy`: a local replica
  rebuilt from the last published generation, an outbox of profile
  writes travelling back to the parent, and a
  :class:`_SharedIndexAdapter` that lets the stock
  :class:`~repro.core.matcher.ProfileMatcher` probe the shared matrices
  unchanged.  Workers never see a torn view: generations are immutable
  segments, and a worker holding unpublished local writes *poisons* its
  own indexed path so the matcher's existing fallback ladder serves the
  probe from the replica scan — read-your-writes without a lock.

Results travel back as ``SubmissionResult.to_dict()`` wire payloads plus
the drained outbox; the parent applies the outbox to the real store,
republishes, and finishes the response through the exact same
bookkeeping helpers the thread frontend uses — which is what makes a
one-at-a-time process-backend run bit-identical to the thread backend.

Failure modes are embraced, not avoided: a chaos plan's ``kill`` fault
(:func:`repro.chaos.plan.worker_kill_plan`) SIGKILLs the target worker
at the dispatch boundary, and the frontend respawns it and re-dispatches
every in-flight request it held — duplicate results after a respawn are
tolerated by completing each request id at most once.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..analysis.static_features import StaticFeatures
from ..chaos import get_injector
from ..chaos.retry import StoreUnavailableError
from ..core.pstorm import PStorM, SubmissionResult
from ..core.shm_index import (
    SharedIndexClient,
    SharedIndexPublisher,
    SharedIndexUnavailableError,
)
from ..core.store import ProfileStore
from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.engine import HadoopEngine
from ..hbase.errors import HBaseError, WorkerKilledError
from ..observability import COUNT_BUCKETS, MetricsRegistry, get_registry
from ..starfish.profile import JobProfile
from .errors import ServiceClosedError

if TYPE_CHECKING:
    from .service import TuningRequest, TuningService

__all__ = [
    "SnapshotStoreProxy",
    "WorkerRuntime",
    "ProcessPoolFrontend",
]

_STOP = None  # worker/dispatcher sentinel


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _SharedIndexAdapter:
    """Duck-typed ``MatchIndex`` over the worker's pinned frozen view.

    ``ensure_fresh`` remaps to the newest published generation and then
    *raises* :class:`SharedIndexUnavailableError` while the worker holds
    local writes the publisher has not absorbed yet — the matcher counts
    that as a poisoned index and probes the replica scan path, which
    *does* see the local writes.  Stage probes delegate to the pinned
    view, so one ``match_side`` call runs entirely against a single
    generation even if the publisher flips mid-probe.
    """

    def __init__(self, proxy: "SnapshotStoreProxy") -> None:
        self._proxy = proxy
        self._pinned = None

    # -- MatchIndex surface -------------------------------------------
    def ensure_fresh(self) -> None:
        self._pinned = self._proxy.sync()
        if self._proxy.has_pending_local():
            raise SharedIndexUnavailableError(
                "worker-local writes are not published yet; "
                "probing the replica scan path instead"
            )

    @property
    def generation(self) -> int:
        return -1 if self._pinned is None else self._pinned.generation

    def euclidean_stage(self, *args: Any, **kwargs: Any) -> list[str]:
        return self._pinned.euclidean_stage(*args, **kwargs)

    def euclidean_stage_batch(self, *args: Any, **kwargs: Any) -> list[list[str]]:
        return self._pinned.euclidean_stage_batch(*args, **kwargs)

    def cfg_stage(self, *args: Any, **kwargs: Any) -> list[str]:
        return self._pinned.cfg_stage(*args, **kwargs)

    def jaccard_stage(self, *args: Any, **kwargs: Any) -> list[str]:
        return self._pinned.jaccard_stage(*args, **kwargs)

    def tie_break(self, *args: Any, **kwargs: Any) -> str:
        return self._pinned.tie_break(*args, **kwargs)

    def stats(self) -> dict[str, int]:
        return {} if self._pinned is None else self._pinned.stats()


class SnapshotStoreProxy:
    """A worker's store: published snapshot replica + pending local writes.

    Duck-type compatible with :class:`~repro.core.store.ProfileStore`
    (everything not overridden delegates to the replica), so the stock
    ``PStorM``/``ProfileMatcher``/``ResilientProfileStore`` stack runs
    on it unchanged.  ``put`` lands in the replica *and* an outbox the
    worker ships back with each result; once the parent publishes a
    generation containing a local write, :meth:`sync` prunes it.
    """

    def __init__(
        self,
        client: SharedIndexClient,
        registry: MetricsRegistry | None = None,
        tracer: Any = None,
    ) -> None:
        # Plain attributes first: __getattr__ delegates to the replica,
        # so everything it needs must exist before any delegation.
        self.registry = registry
        self.tracer = tracer
        self._client = client
        self._view = None
        self._local: dict[str, tuple[JobProfile, StaticFeatures]] = {}
        self._outbox: list[tuple[str, JobProfile, StaticFeatures]] = []
        self._replica = ProfileStore(
            registry=registry, tracer=tracer, enable_index=False
        )
        self._adapter = _SharedIndexAdapter(self)

    # -- generation sync ----------------------------------------------
    def sync(self):
        """Attach the freshest published view; rebuild the replica on a
        generation change.  Returns the pinned
        :class:`~repro.core.match_index.FrozenIndexView`."""
        view = self._client.view()
        if view is not self._view:
            self._rebuild(self._client.meta())
            self._view = view
        return view

    def _rebuild(self, meta: dict[str, Any]) -> None:
        profiles = meta.get("profiles", {})
        statics = meta.get("statics", {})
        replica = ProfileStore(
            registry=self.registry, tracer=self.tracer, enable_index=False
        )
        # Sorted ids: the min/max normalizer updates are order-independent,
        # so any deterministic order reproduces the parent's bounds.
        for job_id in sorted(profiles):
            replica.put(
                JobProfile.from_dict(profiles[job_id]),
                StaticFeatures.from_dict(statics[job_id]),
                job_id=job_id,
            )
        # Published local writes are now authoritative; the rest replay
        # on top of the fresh snapshot, in original put order.
        for job_id in [j for j in self._local if j in profiles]:
            del self._local[job_id]
        for job_id, (profile, static) in self._local.items():
            replica.put(profile, static, job_id=job_id)
        self._replica = replica

    @property
    def view_generation(self) -> int:
        """Generation of the currently attached view (-1 = none)."""
        return self._client.attached_generation

    def has_pending_local(self) -> bool:
        return bool(self._local)

    def drain_outbox(self) -> list[tuple[str, dict[str, Any], dict[str, Any]]]:
        """Pending writes as wire dicts; clears the outbox (not ``_local``,
        which lives until the parent publishes the writes back)."""
        drained = [
            (job_id, profile.to_dict(), static.to_dict())
            for job_id, profile, static in self._outbox
        ]
        self._outbox = []
        return drained

    # -- ProfileStore overrides ---------------------------------------
    def put(
        self,
        profile: JobProfile,
        static: StaticFeatures,
        job_id: str | None = None,
    ) -> str:
        job_id = self._replica.put(profile, static, job_id)
        self._local[job_id] = (profile, static)
        self._outbox.append((job_id, profile, static))
        return job_id

    def match_index(self) -> _SharedIndexAdapter:
        return self._adapter

    def refresh_match_index(self) -> None:
        # The shared view refreshes on the next probe's ensure_fresh;
        # there is nothing to rebuild worker-side.
        return None

    def close(self) -> None:
        self._client.close()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._replica, name)

    def __len__(self) -> int:
        return len(self._replica)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._replica


class WorkerRuntime:
    """One worker's serving core, separable from its process for tests.

    Builds the read-only stack — shared-index client, snapshot store
    proxy, private PStorM pipeline — and answers task dicts with wire
    payloads.  ``_worker_main`` is a thin loop around this class, so the
    logic is coverable in-process.
    """

    def __init__(
        self,
        ctrl_name: str,
        cluster: ClusterSpec,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        unregister: bool = False,
        tuner: str = "cbo",
    ) -> None:
        #: Per-process sink; disabled by default so result payloads skip
        #: the per-submit metrics snapshot (parent-side metrics are the
        #: observable ones).
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.client = SharedIndexClient(
            ctrl_name, registry=self.registry, unregister=unregister
        )
        self.proxy = SnapshotStoreProxy(self.client, registry=self.registry)
        self.pipeline = PStorM(
            HadoopEngine(cluster),
            store=self.proxy,
            seed=seed,
            tuner=tuner,
            registry=self.registry,
        )

    # ------------------------------------------------------------------
    def _serve_one(
        self,
        request_id: int,
        job: Any,
        dataset: Any,
        config: JobConfiguration | None,
        seed: int,
        presampled: Any = None,
        stage1: Any = None,
    ) -> dict[str, Any]:
        try:
            if presampled is not None and not isinstance(presampled, Exception):
                result = self.pipeline.submit(
                    job, dataset, config, seed=seed,
                    _presampled=presampled, _stage1=stage1,
                )
            else:
                result = self.pipeline.submit(job, dataset, config, seed=seed)
            return {
                "request_id": request_id,
                "ok": True,
                "result": result.to_dict(),
                "error": None,
            }
        except Exception as exc:  # noqa: BLE001 — workers must survive anything
            # Same wire format as the thread backend's failure responses.
            return {
                "request_id": request_id,
                "ok": False,
                "result": None,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def serve(self, task: dict[str, Any]) -> dict[str, Any]:
        """Answer one task dict (single submission or coalesced batch)."""
        if task.get("batch") is not None:
            items = task["batch"]
            normalized = [
                (
                    item["job"],
                    item["dataset"],
                    item.get("config"),
                    item.get("seed", 0),
                )
                for item in items
            ]
            presampled, stage1 = self.pipeline.prepare_batch(normalized)
            entries = [
                self._serve_one(
                    item["request_id"], job, dataset, config, seed,
                    presampled=pre, stage1=stage1,
                )
                for item, (job, dataset, config, seed), pre in zip(
                    items, normalized, presampled
                )
            ]
            return {
                "batch": entries,
                "outbox": self.proxy.drain_outbox(),
                "generation": self.proxy.view_generation,
            }
        entry = self._serve_one(
            task["request_id"],
            task["job"],
            task["dataset"],
            task.get("config"),
            task.get("seed", 0),
        )
        entry["outbox"] = self.proxy.drain_outbox()
        entry["generation"] = self.proxy.view_generation
        return entry

    def close(self) -> None:
        self.proxy.close()


def _worker_main(
    worker_index: int,
    ctrl_name: str,
    cluster: ClusterSpec,
    seed: int,
    task_queue: Any,
    result_queue: Any,
    unregister: bool,
    tuner: str = "cbo",
) -> None:
    """Child-process entry point: build a runtime, drain the task queue."""
    try:
        runtime = WorkerRuntime(
            ctrl_name, cluster, seed=seed, unregister=unregister, tuner=tuner
        )
    except Exception as exc:  # noqa: BLE001 — report, never hang the parent
        result_queue.put(
            ("spawn-error", worker_index, f"{type(exc).__name__}: {exc}")
        )
        return
    try:
        while True:
            task = task_queue.get()
            if task is _STOP:
                return
            result_queue.put(("result", worker_index, runtime.serve(task)))
    finally:
        runtime.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """One dispatched-but-unanswered request."""

    request: "TuningRequest"
    future: Any
    key: Any
    now: float
    task: dict[str, Any]
    worker_index: int
    enqueued_at: float


@dataclass
class _Worker:
    index: int
    process: Any
    queue: Any
    alive: bool = True
    spawned_at: float = field(default_factory=time.monotonic)


class ProcessPoolFrontend:
    """The process backend behind ``TuningService`` (``backend="processes"``).

    The parent publishes the store's match index over shared memory,
    serves cache hits itself, and round-robins misses to worker
    processes; a collector thread applies each result's outbox to the
    authoritative store, republishes, and completes the future through
    the service's own response helpers.  Chaos ``kill`` faults at the
    ``dispatch`` boundary SIGKILL the target worker; the frontend
    respawns it with a fresh queue and re-dispatches everything it held.
    """

    def __init__(
        self,
        service: "TuningService",
        injector: Any = None,
        start_method: str | None = None,
    ) -> None:
        self.service = service
        self.registry = service.registry
        self._injector = injector
        self._ctx = multiprocessing.get_context(start_method)
        #: Forked children share the parent's resource tracker (which the
        #: publisher's unlinks satisfy); spawned children run their own
        #: and must drop attach-time registrations they do not own.
        self._unregister = self._ctx.get_start_method() != "fork"
        self._lock = threading.RLock()
        self._publisher: SharedIndexPublisher | None = None
        self._workers: list[_Worker | None] = []
        self._inflight: dict[int, _Pending] = {}
        self._result_queue: Any = None
        self._collector: threading.Thread | None = None
        self._dispatcher: threading.Thread | None = None
        self._dispatch_queue: "queue_module.Queue[Any] | None" = None
        self._rr = itertools.count()
        self._running = False
        self._stopping = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        registry = get_registry(self.registry)
        self._publisher = SharedIndexPublisher(
            self.service.store, registry=self.registry
        )
        self._publisher.publish()
        self._result_queue = self._ctx.Queue()
        self._workers = [
            self._spawn(index) for index in range(self.service.config.workers)
        ]
        self._running = True
        self._stopping = False
        registry.gauge(
            "serving_workers_alive", "serving worker processes currently alive"
        ).set(float(len(self._workers)))
        self._collector = threading.Thread(
            target=self._collector_loop, name="procpool-collector", daemon=True
        )
        self._collector.start()
        if self.service.config.batch_window_seconds > 0:
            self._dispatch_queue = queue_module.Queue()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="procpool-dispatcher", daemon=True
            )
            self._dispatcher.start()

    def _spawn(self, index: int) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._publisher.ctrl_name,
                self.service.cluster,
                self.service.seed,
                task_queue,
                self._result_queue,
                self._unregister,
                self.service.config.tuner,
            ),
            name=f"tuning-proc-{index}",
            daemon=True,
        )
        process.start()
        get_registry(self.registry).counter(
            "serving_worker_spawns_total", "serving worker processes started"
        ).inc()
        return _Worker(index=index, process=process, queue=task_queue)

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Admission's queue-depth signal: dispatched + not yet answered."""
        with self._lock:
            depth = len(self._inflight)
        if self._dispatch_queue is not None:
            depth += self._dispatch_queue.qsize()
        return depth

    def publish(self) -> None:
        """Republish after a parent-side write (``remember`` path)."""
        with self._lock:
            if self._publisher is not None:
                self._publisher.publish()

    # ------------------------------------------------------------------
    def submit(self, request: "TuningRequest", future: Any, now: float) -> None:
        """Accept one admitted request (called by ``submit_request``)."""
        if self._dispatch_queue is not None:
            self._dispatch_queue.put((request, future, now))
            return
        self._dispatch([(request, future, now)])

    def _dispatch_loop(self) -> None:
        window = self.service.config.batch_window_seconds
        batch_max = max(1, self.service.config.batch_max)
        assert self._dispatch_queue is not None
        while True:
            item = self._dispatch_queue.get()
            if item is _STOP:
                return
            batch = [item]
            deadline = time.monotonic() + window
            while len(batch) < batch_max:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._dispatch_queue.get(timeout=remaining)
                except queue_module.Empty:
                    break
                if nxt is _STOP:
                    self._dispatch(batch)
                    return
                batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, items: list[tuple[Any, Any, float]]) -> None:
        """Serve cache hits parent-side; coalesce the misses to one worker."""
        from .cache import cache_key_for  # local import: avoid cycle at module load

        registry = get_registry(self.registry)
        misses: list[_Pending] = []
        for request, future, __ in items:
            now = self.service.clock.now()
            registry.counter(
                "serving_requests_total",
                "requests reaching the service pipeline",
                labels={"tenant": request.tenant},
            ).inc()
            key = cache_key_for(request.job, request.dataset, self.service.cluster)
            cached = self.service.cache.get(key, now)
            if cached is not None:
                response = self.service._hit_response(request, cached)
                self.service._record_response(response)
                with self.service._lock:
                    self.service.clock.advance(response.service_seconds)
                future.set_result(response)
                continue
            misses.append(
                _Pending(
                    request=request,
                    future=future,
                    key=key,
                    now=now,
                    task={},
                    worker_index=-1,
                    enqueued_at=time.monotonic(),
                )
            )
        if not misses:
            return
        if len(misses) == 1:
            pending = misses[0]
            request = pending.request
            pending.task = {
                "request_id": request.request_id,
                "job": request.job,
                "dataset": request.dataset,
                "config": request.config,
                "seed": request.seed,
            }
        else:
            task = {
                "batch": [
                    {
                        "request_id": p.request.request_id,
                        "job": p.request.job,
                        "dataset": p.request.dataset,
                        "config": p.request.config,
                        "seed": p.request.seed,
                    }
                    for p in misses
                ]
            }
            for pending in misses:
                pending.task = task
        registry.histogram(
            "serving_batch_size",
            "submissions coalesced into one worker dispatch",
            buckets=COUNT_BUCKETS,
        ).observe(len(misses))
        with self._lock:
            for pending in misses:
                self._inflight[pending.request.request_id] = pending
            self._dispatch_task(
                misses[0].task, [p.request.request_id for p in misses]
            )

    def _pick_worker(self) -> _Worker | None:
        for __ in range(len(self._workers)):
            candidate = self._workers[next(self._rr) % len(self._workers)]
            if candidate is not None and candidate.alive:
                return candidate
        return None

    def _dispatch_task(self, task: dict[str, Any], request_ids: list[int]) -> None:
        """Pick a worker, consult chaos, enqueue. Caller holds the lock."""
        registry = get_registry(self.registry)
        worker = self._pick_worker()
        if worker is None:
            for rid in request_ids:
                pending = self._inflight.pop(rid, None)
                if pending is not None:
                    pending.future.set_result(
                        self.service._failure_response(
                            pending.request, "RuntimeError: no live workers"
                        )
                    )
            return
        injector = get_injector(self._injector)
        if injector is not None:
            try:
                injector.on_operation("dispatch", server_id=worker.index)
            except WorkerKilledError:
                registry.counter(
                    "serving_worker_kills_total",
                    "worker processes SIGKILLed by chaos kill faults",
                ).inc()
                self._respawn(worker, kill=True)
                worker = self._workers[worker.index]
            except HBaseError:
                # Non-kill chaos at the dispatch boundary is treated as
                # transient dispatcher noise, never a lost request.
                registry.counter(
                    "serving_dispatch_faults_total",
                    "non-kill chaos faults absorbed at dispatch",
                ).inc()
        for rid in request_ids:
            if rid in self._inflight:
                self._inflight[rid].worker_index = worker.index
        registry.counter(
            "serving_dispatches_total", "tasks handed to worker processes"
        ).inc()
        worker.queue.put(task)

    # ------------------------------------------------------------------
    def _respawn(self, worker: _Worker, kill: bool) -> None:
        """Replace one worker with a fresh process + queue and re-dispatch
        everything it held. Caller holds the lock."""
        registry = get_registry(self.registry)
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=10.0)
        worker.alive = False
        try:
            worker.queue.close()
        except Exception:  # noqa: BLE001 — a killed reader can corrupt it
            pass
        replacement = self._spawn(worker.index)
        self._workers[worker.index] = replacement
        registry.counter(
            "serving_worker_respawns_total",
            "worker processes respawned after a kill or unexpected death",
        ).inc()
        registry.gauge(
            "serving_workers_alive", "serving worker processes currently alive"
        ).set(float(sum(1 for w in self._workers if w is not None and w.alive)))
        # Re-dispatch the dead worker's in-flight tasks, dispatch order
        # preserved, shared batch tasks exactly once.
        seen: set[int] = set()
        for rid in sorted(self._inflight):
            pending = self._inflight[rid]
            if pending.worker_index != worker.index:
                continue
            pending.worker_index = replacement.index
            if id(pending.task) in seen:
                continue
            seen.add(id(pending.task))
            replacement.queue.put(pending.task)

    def _collector_loop(self) -> None:
        assert self._result_queue is not None
        while True:
            try:
                message = self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                if not self._running:
                    return
                self._check_liveness()
                continue
            kind, worker_index, payload = message
            if kind == "spawn-error":
                self._on_spawn_error(worker_index, payload)
            else:
                self._on_result(payload)

    def _check_liveness(self) -> None:
        with self._lock:
            if self._stopping:
                return
            for worker in self._workers:
                if worker is None or not worker.alive:
                    continue
                if worker.process.is_alive():
                    continue
                if any(
                    p.worker_index == worker.index
                    for p in self._inflight.values()
                ):
                    self._respawn(worker, kill=False)

    def _on_spawn_error(self, worker_index: int, message: str) -> None:
        """A worker died before serving: fail its work, leave the slot dead
        (respawning a worker that cannot boot would loop forever)."""
        get_registry(self.registry).counter(
            "serving_worker_spawn_errors_total",
            "worker processes that failed during startup",
        ).inc()
        with self._lock:
            worker = self._workers[worker_index]
            if worker is not None:
                worker.alive = False
            stranded = [
                rid
                for rid, p in self._inflight.items()
                if p.worker_index == worker_index
            ]
            pendings = [self._inflight.pop(rid) for rid in sorted(stranded)]
        for pending in pendings:
            response = self.service._failure_response(pending.request, message)
            self.service._record_response(response)
            pending.future.set_result(response)
        get_registry(self.registry).gauge(
            "serving_workers_alive", "serving worker processes currently alive"
        ).set(
            float(sum(1 for w in self._workers if w is not None and w.alive))
        )

    def _on_result(self, payload: dict[str, Any]) -> None:
        registry = get_registry(self.registry)
        outbox = payload.get("outbox") or []
        for job_id, profile_dict, static_dict in outbox:
            try:
                self.service.store.put(
                    JobProfile.from_dict(profile_dict),
                    StaticFeatures.from_dict(static_dict),
                    job_id=job_id,
                )
                registry.counter(
                    "serving_outbox_profiles_total",
                    "worker miss-path profiles applied to the parent store",
                ).inc()
            except StoreUnavailableError:
                registry.counter(
                    "serving_outbox_failures_total",
                    "outbox writes that exhausted the store budget",
                ).inc()
        if outbox:
            try:
                with self._lock:
                    if self._publisher is not None:
                        self._publisher.publish()
            except Exception:  # noqa: BLE001 — workers keep the last good view
                registry.counter(
                    "serving_publish_failures_total",
                    "shared-index republishes that failed after an outbox",
                ).inc()
        with self._lock:
            published = (
                -1
                if self._publisher is None
                else self._publisher.published_generation
            )
        registry.gauge(
            "serving_generation_lag",
            "published generation minus the generation workers answered from",
        ).set(float(published - payload.get("generation", -1)))
        entries = payload["batch"] if payload.get("batch") is not None else [payload]
        for entry in entries:
            self._finish_entry(entry)

    def _finish_entry(self, entry: dict[str, Any]) -> None:
        with self._lock:
            pending = self._inflight.pop(entry["request_id"], None)
        if pending is None:
            return  # duplicate result after a kill + re-dispatch
        request = pending.request
        if entry["ok"]:
            result = SubmissionResult.from_dict(entry["result"])
            self.service._miss_bookkeeping(pending.key, result, pending.now)
            response = self.service._miss_response(request, result)
        else:
            get_registry(self.registry).counter(
                "serving_pipeline_failures_total",
                "requests that raised inside the tuning pipeline",
            ).inc()
            response = self.service._failure_response(request, entry["error"])
        response.wait_seconds = max(
            0.0, time.monotonic() - pending.enqueued_at
        )
        self.service._record_response(response)
        with self.service._lock:
            self.service.clock.advance(response.service_seconds)
        pending.future.set_result(response)

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 30.0) -> int:
        """Drain, shut workers down, unlink every segment; returns the
        number of workers that had to be force-killed (the "hung" count)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            self._stopping = True
        if self._dispatcher is not None and self._dispatch_queue is not None:
            self._dispatch_queue.put(_STOP)
            self._dispatcher.join(timeout=max(0.0, deadline - time.monotonic()))
            self._dispatcher = None
        # Let the collector finish in-flight work first.
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(0.02)
        for worker in self._workers:
            if worker is not None and worker.alive:
                try:
                    worker.queue.put(_STOP)
                except Exception:  # noqa: BLE001
                    pass
        hung = 0
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                hung += 1
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.alive = False
        self._running = False
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None
        with self._lock:
            stranded = sorted(self._inflight)
            pendings = [self._inflight.pop(rid) for rid in stranded]
        for pending in pendings:
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceClosedError("service stopped before completion")
                )
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.queue.close()
            except Exception:  # noqa: BLE001
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
            except Exception:  # noqa: BLE001
                pass
            self._result_queue = None
        with self._lock:
            if self._publisher is not None:
                self._publisher.close()
                self._publisher = None
        registry = get_registry(self.registry)
        registry.gauge(
            "serving_workers_alive", "serving worker processes currently alive"
        ).set(0.0)
        self._workers = []
        return hung
