"""The tuning service: a concurrent multi-client frontend over PStorM.

``PStorM.submit`` is a blocking single-caller library call; this module
wraps it in the serving shape the ROADMAP's always-on deployment needs:

- a **bounded request queue** fed through the admission gates of
  :mod:`repro.serving.admission` (watermark shedding + per-tenant token
  buckets), drained by a **pool of worker threads**;
- each worker drives its **own PStorM pipeline** (engine, profiler,
  sampler, CBO, RBO — none of which are shared-state safe) over the
  **one shared profile store**, which *is* concurrency-safe
  (store-level lock + the resilient retry client);
- a keyed :class:`~repro.serving.cache.ResultCache` consulted before any
  pipeline work and **invalidated** when ``remember()`` (or a miss-path
  profile write) lands a new profile for a matching job signature;
- graceful degradation under chaos: ``PStorM.submit`` already absorbs
  store outages into degraded results, and ``remember()`` failures are
  swallowed into a counted ``None`` — a worker never dies, a request
  never hangs.

Two frontends drive :meth:`TuningService.handle`:

- the thread pool (:meth:`start` / :meth:`submit_request` / :meth:`stop`)
  used by ``repro serve`` and the concurrency stress tests — real
  parallelism, wall-clock waits;
- the deterministic event loop of :mod:`repro.serving.loadgen`, which
  calls ``handle`` inline at simulated timestamps — bit-reproducible
  summaries.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..chaos.retry import RetryPolicy, StoreUnavailableError, VirtualClock
from ..core.maintenance import MaintainedStore
from ..core.pstorm import PStorM, SubmissionResult
from ..core.resilient import ResilientProfileStore
from ..core.store import ProfileStore
from ..hadoop.cluster import ClusterSpec, ec2_cluster
from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.engine import HadoopEngine
from ..hadoop.job import MapReduceJob
from ..observability import (
    SIM_SECONDS_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..tuners import TUNER_NAMES
from .admission import AdmissionController, TenantPolicy
from .cache import ResultCache, cache_key_for, job_signature
from .errors import ServiceClosedError, ServiceOverloadError

__all__ = [
    "ServiceConfig",
    "TuningRequest",
    "TuningResponse",
    "TuningService",
]

_SENTINEL = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`TuningService` deployment."""

    #: Worker threads (thread frontend) / simulated servers (loadgen).
    workers: int = 4
    #: Hard bound of the request queue.
    queue_capacity: int = 64
    #: Depth at which admission starts shedding; None = queue_capacity.
    shed_watermark: int | None = None
    #: Result-cache entry bound (LRU beyond it).
    cache_capacity: int = 256
    #: Result-cache TTL on the service's simulated clock.
    cache_ttl_seconds: float = 6 * 3600.0
    #: Rate limits for tenants without an explicit policy.
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    #: Per-tenant rate-limit overrides.
    tenant_policies: Mapping[str, TenantPolicy] = field(default_factory=dict)
    #: Budget a request may spend waiting in the queue before it is shed
    #: with reason "deadline" instead of started late.
    deadline_seconds: float = 1800.0
    #: Modelled cost of serving a cached result (simulated seconds).
    cache_hit_cost_seconds: float = 0.01
    #: Modelled matcher/CBO overhead on top of the 1-task sample cost.
    match_overhead_seconds: float = 0.25
    #: Modelled cost of one remember() write (full instrumented run).
    remember_cost_seconds: float = 60.0
    #: When set, bound the shared store to this many profiles
    #: (MaintainedStore inside the resilient client).
    store_capacity: int | None = None
    #: Concurrency backend of the real frontend: "threads" (worker
    #: threads, GIL-bound) or "processes" (worker processes over the
    #: shared-memory index, :mod:`repro.serving.procpool`).
    backend: str = "threads"
    #: Modelled cost of the cache probe itself (simulated seconds).
    #: Deliberately off the 0.01 cache-hit grid so warm-path latency
    #: percentiles resolve instead of clamping to one tick.
    cache_lookup_cost_seconds: float = 0.0
    #: Process backend: how long the dispatcher holds the first queued
    #: request open to coalesce more into one vectorized probe (0 = no
    #: batching, dispatch immediately).
    batch_window_seconds: float = 0.0
    #: Process backend: most submissions coalesced per dispatch.
    batch_max: int = 8
    #: Region servers hosting the store's HBase substrate (sharding).
    num_region_servers: int = 1
    #: Read replicas per region (clamped to num_region_servers).
    replication: int = 1
    #: Rows per region before it splits; None = substrate default.
    split_threshold: int | None = None
    #: Probe with per-region scatter-gather match-index partitions
    #: instead of one flat index.
    shard_index: bool = False
    #: Thread fan-out of a sharded probe's per-partition scans (1 =
    #: sequential; results are bit-identical at any width).
    probe_workers: int = 1
    #: Which tuner-family member optimizes matched profiles on the hit
    #: path ("rbo", "cbo", "spsa", "surrogate", "ensemble"); "cbo" is
    #: the paper's workflow and is bit-identical to the pre-family path.
    tuner: str = "cbo"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.tuner not in TUNER_NAMES:
            raise ValueError(
                f"unknown tuner {self.tuner!r}; expected one of {TUNER_NAMES}"
            )
        if self.probe_workers < 1:
            raise ValueError("probe_workers must be at least 1")
        if self.deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        if self.backend not in ("threads", "processes"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if self.batch_window_seconds < 0:
            raise ValueError("batch window cannot be negative")
        if self.num_region_servers < 1:
            raise ValueError("need at least one region server")
        if self.replication < 1:
            raise ValueError("replication must be at least 1")


@dataclass(frozen=True)
class TuningRequest:
    """One tuning question from one tenant."""

    request_id: int
    tenant: str
    job: MapReduceJob
    dataset: Dataset
    config: JobConfiguration | None = None
    seed: int = 0
    submitted_at: float = 0.0
    deadline_seconds: float | None = None


@dataclass
class TuningResponse:
    """What the service answered (wire-serializable via to_dict)."""

    request_id: int
    tenant: str
    #: "ok" | "shed" | "failed"
    status: str
    cache_hit: bool = False
    degraded: bool = False
    shed_reason: str | None = None
    retry_after_seconds: float | None = None
    wait_seconds: float = 0.0
    service_seconds: float = 0.0
    result: SubmissionResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable wire form (result via its own codec)."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "shed_reason": self.shed_reason,
            "retry_after_seconds": self.retry_after_seconds,
            "wait_seconds": self.wait_seconds,
            "service_seconds": self.service_seconds,
            "result": None if self.result is None else self.result.to_dict(),
            "error": self.error,
        }


class TuningService:
    """A multi-tenant tuning frontend over one shared profile store.

    Args:
        cluster: the cluster every worker pipeline simulates against;
            a fresh EC2-shaped one if omitted.
        store: the shared profile store (bare, maintained, or already
            resilient); built from ``config.store_capacity`` if omitted.
        config: service knobs.
        seed: seed handed to each worker's PStorM (CBO search etc.).
        engine_factory: how a worker builds its private engine; defaults
            to ``HadoopEngine(cluster)``.
        data_dir: build the service over a *durable* profile store
            rooted here (restored if the directory already holds
            state, so a restarted service serves its first probe from
            the snapshot checkpoint).  Ignored when *store* is given.
    """

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        store: Any = None,
        config: ServiceConfig | None = None,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        retry_policy: RetryPolicy | None = None,
        engine_factory: Callable[[], HadoopEngine] | None = None,
        data_dir: Any = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cluster = cluster if cluster is not None else ec2_cluster()
        self.seed = seed
        self.registry = registry
        self.tracer = tracer
        self._engine_factory = engine_factory

        inner = (
            store
            if store is not None
            else ProfileStore(
                registry=registry,
                data_dir=data_dir,
                num_region_servers=self.config.num_region_servers,
                replication=self.config.replication,
                split_threshold=self.config.split_threshold,
                shard_index=self.config.shard_index,
                probe_workers=self.config.probe_workers,
            )
        )
        if self.config.store_capacity is not None and not isinstance(
            inner, (MaintainedStore, ResilientProfileStore)
        ):
            inner = MaintainedStore(inner, capacity=self.config.store_capacity)
        if isinstance(inner, ResilientProfileStore):
            self.store = inner
        else:
            self.store = ResilientProfileStore(
                inner, policy=retry_policy, registry=registry
            )

        #: Simulated clock: cache TTLs and service-time accounting live
        #: here.  The thread frontend advances it by each response's
        #: modelled cost; the load harness drives it directly.
        self.clock = VirtualClock()
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_seconds=self.config.cache_ttl_seconds,
            registry=registry,
        )
        self.admission = AdmissionController(
            queue_capacity=self.config.queue_capacity,
            shed_watermark=self.config.shed_watermark,
            default_policy=self.config.default_tenant,
            tenant_policies=dict(self.config.tenant_policies),
            registry=registry,
        )

        self._lock = threading.RLock()
        self._pipelines = threading.local()
        self._seq = itertools.count(1)
        self._queue: "queue.Queue[Any] | None" = None
        self._threads: list[threading.Thread] = []
        self._procpool: Any = None
        self._running = False
        self._hung_workers = 0
        #: Rolling estimate of one request's modelled cost, for the
        #: queue-full retry-after hint.
        self._cost_estimate = self.config.match_overhead_seconds

    # ------------------------------------------------------------------
    # Pipeline management
    # ------------------------------------------------------------------
    def _pipeline(self) -> PStorM:
        """This thread's private PStorM over the shared store."""
        pipeline = getattr(self._pipelines, "pstorm", None)
        if pipeline is None:
            engine = (
                self._engine_factory()
                if self._engine_factory is not None
                else HadoopEngine(self.cluster)
            )
            pipeline = PStorM(
                engine,
                store=self.store,
                seed=self.seed,
                tuner=self.config.tuner,
                registry=self.registry,
                tracer=self.tracer,
            )
            self._pipelines.pstorm = pipeline
        return pipeline

    def next_request_id(self) -> int:
        return next(self._seq)

    # ------------------------------------------------------------------
    # The core request pipeline (both frontends call this)
    # ------------------------------------------------------------------
    def handle(self, request: TuningRequest, now: float | None = None) -> TuningResponse:
        """Serve one admitted request: cache probe, else full pipeline.

        Never raises for store trouble: ``PStorM.submit`` degrades
        internally and anything else is folded into a ``"failed"``
        response — workers are unkillable by a bad request.
        """
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        if now is None:
            now = self.clock.now()
        registry.counter(
            "serving_requests_total",
            "requests reaching the service pipeline",
            labels={"tenant": request.tenant},
        ).inc()

        key = cache_key_for(request.job, request.dataset, self.cluster)
        with tracer.span(
            "serving.handle", tenant=request.tenant, job=request.job.name
        ) as span:
            cached = self.cache.get(key, now)
            if cached is not None:
                span.set_attr("cache_hit", True)
                response = self._hit_response(request, cached)
            else:
                span.set_attr("cache_hit", False)
                response = self._handle_miss(request, key, now)
        self._record_response(response)
        return response

    def handle_batch(
        self,
        requests: list[TuningRequest],
        nows: list[float] | None = None,
    ) -> list[TuningResponse]:
        """Serve several admitted requests with one vectorized stage-1 probe.

        The window is split into *segments* at signature barriers: a
        request whose job signature is already claimed in the current
        segment flushes the segment first.  Within a segment every
        signature is pairwise distinct, so the cache probes and the
        miss-path store writes commute with sequential order — the
        responses (including cache-hit/miss accounting) are identical to
        calling :meth:`handle` request by request, with the miss-path
        stage-1 filters priced in one broadcast per segment.

        The one documented caveat: equivalence needs the result cache to
        stay under capacity across the window (LRU eviction pressure is
        recency-order-sensitive and batch probing reorders recency
        within a segment).  Size ``cache_capacity`` above the number of
        distinct in-window keys — the load harness runs 64 vs 8.
        """
        if nows is None:
            nows = [self.clock.now()] * len(requests)
        responses: dict[int, TuningResponse] = {}
        segment: list[tuple[int, TuningRequest, Any, float]] = []
        claimed: set[str] = set()

        def flush() -> None:
            if segment:
                self._handle_segment(segment, responses)
            segment.clear()
            claimed.clear()

        for position, (request, now) in enumerate(zip(requests, nows)):
            key = cache_key_for(request.job, request.dataset, self.cluster)
            if key.job_signature in claimed:
                flush()
            claimed.add(key.job_signature)
            segment.append((position, request, key, now))
        flush()
        ordered = [responses[position] for position in range(len(requests))]
        for response in ordered:
            self._record_response(response)
        return ordered

    def _handle_segment(
        self,
        segment: list[tuple[int, "TuningRequest", Any, float]],
        responses: dict[int, TuningResponse],
    ) -> None:
        """One barrier-free slice of a batch: probe all, broadcast misses."""
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        misses: list[tuple[int, TuningRequest, Any, float]] = []
        for position, request, key, now in segment:
            registry.counter(
                "serving_requests_total",
                "requests reaching the service pipeline",
                labels={"tenant": request.tenant},
            ).inc()
            cached = self.cache.get(key, now)
            with tracer.span(
                "serving.handle", tenant=request.tenant, job=request.job.name
            ) as span:
                span.set_attr("cache_hit", cached is not None)
                if cached is not None:
                    responses[position] = self._hit_response(request, cached)
                else:
                    misses.append((position, request, key, now))
        if not misses:
            return
        pipeline = self._pipeline()
        presampled, stage1 = pipeline.prepare_batch(
            [(r.job, r.dataset, r.config, r.seed) for __, r, __, __ in misses]
        )
        for (position, request, key, now), sampled in zip(misses, presampled):
            try:
                if isinstance(sampled, Exception):
                    # Scalar re-run raises the identical message.
                    result = pipeline.submit(
                        request.job, request.dataset, request.config,
                        seed=request.seed,
                    )
                else:
                    result = pipeline.submit(
                        request.job, request.dataset, request.config,
                        seed=request.seed,
                        _presampled=sampled, _stage1=stage1,
                    )
            except Exception as exc:  # noqa: BLE001 — per-item isolation
                registry.counter(
                    "serving_pipeline_failures_total",
                    "requests that raised inside the tuning pipeline",
                ).inc()
                responses[position] = self._failure_response(
                    request, f"{type(exc).__name__}: {exc}"
                )
                continue
            self._miss_bookkeeping(key, result, now)
            responses[position] = self._miss_response(request, result)

    def _hit_response(
        self, request: TuningRequest, cached: SubmissionResult
    ) -> TuningResponse:
        return TuningResponse(
            request_id=request.request_id,
            tenant=request.tenant,
            status="ok",
            cache_hit=True,
            degraded=cached.degraded,
            service_seconds=(
                self.config.cache_hit_cost_seconds
                + self.config.cache_lookup_cost_seconds
            ),
            result=cached,
        )

    def _failure_response(
        self, request: TuningRequest, error: str
    ) -> TuningResponse:
        return TuningResponse(
            request_id=request.request_id,
            tenant=request.tenant,
            status="failed",
            service_seconds=(
                self.config.cache_hit_cost_seconds
                + self.config.cache_lookup_cost_seconds
            ),
            error=error,
        )

    def _miss_bookkeeping(
        self, key: Any, result: SubmissionResult, now: float
    ) -> None:
        if not result.degraded:
            self.cache.put(key, result, now)
            if result.profile_stored_as is not None:
                # The miss path just enriched the store for this program:
                # peers cached against the poorer store are stale.
                self.cache.invalidate_job(key.job_signature, keep=key)

    def _miss_response(
        self, request: TuningRequest, result: SubmissionResult
    ) -> TuningResponse:
        return TuningResponse(
            request_id=request.request_id,
            tenant=request.tenant,
            status="ok",
            degraded=result.degraded,
            service_seconds=(
                result.sampling_seconds
                + self.config.match_overhead_seconds
                + self.config.cache_lookup_cost_seconds
            ),
            result=result,
        )

    def _handle_miss(
        self, request: TuningRequest, key: Any, now: float
    ) -> TuningResponse:
        try:
            result = self._pipeline().submit(
                request.job, request.dataset, request.config, seed=request.seed
            )
        except Exception as exc:  # noqa: BLE001 — worker must survive anything
            get_registry(self.registry).counter(
                "serving_pipeline_failures_total",
                "requests that raised inside the tuning pipeline",
            ).inc()
            return self._failure_response(request, f"{type(exc).__name__}: {exc}")
        self._miss_bookkeeping(key, result, now)
        return self._miss_response(request, result)

    def remember(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        seed: int = 0,
        now: float | None = None,
    ) -> str | None:
        """Store a fully instrumented profile and invalidate stale cache.

        Returns the stored job id, or None when the store write gave up
        under its retry budget (counted, never raised — the serving loop
        must outlive its store).
        """
        registry = get_registry(self.registry)
        try:
            job_id = self._pipeline().remember(job, dataset, config, seed=seed)
        except StoreUnavailableError:
            registry.counter(
                "serving_remember_failures_total",
                "remember() writes that exhausted the store budget",
            ).inc()
            return None
        invalidated = self.cache.invalidate_job(job_signature(job))
        # The result cache and the store's columnar match index go stale
        # together on a profile write, so they are refreshed together:
        # peers re-match against the richer store, and they do it on the
        # indexed path rather than paying a rebuild scan on first probe.
        refresh = getattr(self.store, "refresh_match_index", None)
        if callable(refresh):
            try:
                refresh()
            except StoreUnavailableError:
                registry.counter(
                    "serving_index_refresh_failures_total",
                    "match-index refreshes that exhausted the store budget",
                ).inc()
        registry.counter(
            "serving_remembers_total", "profiles stored via the service"
        ).inc()
        with self._lock:
            procpool = self._procpool
        if procpool is not None:
            # Worker processes only see the write once it is published.
            try:
                procpool.publish()
            except Exception:  # noqa: BLE001 — workers keep the last good view
                registry.counter(
                    "serving_publish_failures_total",
                    "shared-index republishes that failed after an outbox",
                ).inc()
        if now is None:
            now = self.clock.now()
        del now  # reserved for future freshness bookkeeping
        del invalidated
        return job_id

    def _record_response(self, response: TuningResponse) -> None:
        registry = get_registry(self.registry)
        registry.counter(
            "serving_responses_total",
            "responses produced, by status",
            labels={"status": response.status},
        ).inc()
        if response.degraded:
            registry.counter(
                "serving_degraded_responses_total",
                "responses served through a degraded pipeline",
            ).inc()
        registry.histogram(
            "serving_service_seconds",
            "modelled service time per request",
            buckets=SIM_SECONDS_BUCKETS,
        ).observe(response.service_seconds)
        with self._lock:
            # EMA of request cost, feeding the queue-full retry hint.
            self._cost_estimate = (
                0.8 * self._cost_estimate + 0.2 * response.service_seconds
            )

    def backlog_hint(self, queue_depth: int) -> float:
        """Estimated seconds for the current backlog to drain."""
        with self._lock:
            per_request = self._cost_estimate
        return max(0.001, queue_depth * per_request / self.config.workers)

    # ------------------------------------------------------------------
    # Thread-pool frontend
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool (idempotent).

        ``config.backend`` picks the concurrency substrate: worker
        threads over one in-process store, or worker processes over the
        shared-memory match index (:mod:`repro.serving.procpool`).
        """
        if self.config.backend == "processes":
            from .procpool import ProcessPoolFrontend

            with self._lock:
                if self._running:
                    return
                self._procpool = ProcessPoolFrontend(self)
                self._running = True
                self._hung_workers = 0
            self._procpool.start()
            return
        with self._lock:
            if self._running:
                return
            self._queue = queue.Queue(maxsize=self.config.queue_capacity)
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"tuning-worker-{index}",
                    daemon=True,
                )
                for index in range(self.config.workers)
            ]
            self._running = True
            self._hung_workers = 0
        for thread in self._threads:
            thread.start()

    def submit_request(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        tenant: str = "default",
        config: JobConfiguration | None = None,
        seed: int = 0,
    ) -> "Future[TuningResponse]":
        """Admit and enqueue one request; returns a future response.

        Raises:
            ServiceClosedError: the pool is not running.
            ServiceOverloadError: shed at admission (queue watermark or
                tenant rate limit); carries the retry-after hint.
        """
        with self._lock:
            if not self._running or (self._queue is None and self._procpool is None):
                raise ServiceClosedError("service is not accepting requests")
            work_queue = self._queue
            procpool = self._procpool
        depth = (
            procpool.backlog() if procpool is not None else work_queue.qsize()
        )
        now = time.monotonic()
        self.admission.admit(
            tenant, depth, now=now, backlog_seconds_hint=self.backlog_hint(depth)
        )
        request = TuningRequest(
            request_id=self.next_request_id(),
            tenant=tenant,
            job=job,
            dataset=dataset,
            config=config,
            seed=seed,
            submitted_at=now,
        )
        future: "Future[TuningResponse]" = Future()
        if procpool is not None:
            procpool.submit(request, future, now)
            return future
        try:
            work_queue.put_nowait((request, future, now))
        except queue.Full:
            # Raced past the watermark check; shed like the gate would.
            get_registry(self.registry).counter(
                "serving_shed_total",
                "requests refused at admission, by reason",
                labels={"reason": "queue-full"},
            ).inc()
            raise ServiceOverloadError(
                "queue-full",
                retry_after_seconds=self.backlog_hint(depth),
                tenant=tenant,
            ) from None
        get_registry(self.registry).gauge(
            "serving_queue_depth", "requests waiting in the service queue"
        ).set(work_queue.qsize())
        return future

    def _worker_loop(self) -> None:
        registry = get_registry(self.registry)
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            request, future, enqueued_at = item
            try:
                wait = max(0.0, time.monotonic() - enqueued_at)
                registry.histogram(
                    "serving_queue_wait_seconds",
                    "time requests spent queued before a worker took them",
                ).observe(wait)
                deadline = (
                    request.deadline_seconds
                    if request.deadline_seconds is not None
                    else self.config.deadline_seconds
                )
                if wait > deadline:
                    registry.counter(
                        "serving_shed_total",
                        "requests refused at admission, by reason",
                        labels={"reason": "deadline"},
                    ).inc()
                    response = TuningResponse(
                        request_id=request.request_id,
                        tenant=request.tenant,
                        status="shed",
                        shed_reason="deadline",
                        wait_seconds=wait,
                    )
                    self._record_response(response)
                else:
                    response = self.handle(request)
                    response.wait_seconds = wait
                    with self._lock:
                        self.clock.advance(response.service_seconds)
                future.set_result(response)
            except BaseException as exc:  # pragma: no cover — belt and braces
                if not future.done():
                    future.set_exception(exc)

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain and join the pool; True when every worker exited.

        Queued work is completed first (sentinels queue behind it).  A
        worker that fails to join within its slice of *timeout* is
        counted on the ``serving_workers_hung`` gauge — the acceptance
        bar for chaos runs is that this stays at zero.
        """
        with self._lock:
            if not self._running:
                return True
            procpool = self._procpool
            if procpool is not None:
                self._procpool = None
                self._running = False
        if procpool is not None:
            hung = procpool.stop(timeout)
            with self._lock:
                self._hung_workers = hung
            get_registry(self.registry).gauge(
                "serving_workers_hung",
                "workers that failed to join at shutdown",
            ).set(hung)
            return hung == 0
        with self._lock:
            if self._queue is None:
                return True
            work_queue = self._queue
            threads = list(self._threads)
            self._running = False
        for __ in threads:
            work_queue.put(_SENTINEL)
        deadline = time.monotonic() + timeout
        hung = 0
        for thread in threads:
            remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
            if thread.is_alive():
                hung += 1
        with self._lock:
            self._hung_workers = hung
            self._threads = []
            self._queue = None
        get_registry(self.registry).gauge(
            "serving_workers_hung",
            "workers that failed to join at shutdown",
        ).set(hung)
        return hung == 0

    @property
    def hung_workers(self) -> int:
        return self._hung_workers

    @property
    def running(self) -> bool:
        return self._running
