"""The keyed result cache of the tuning service.

The pattern-matching line of work (arXiv:1301.4753) motivates reusing
prior match decisions instead of recomputing them: two submissions of the
same program over the same dataset on the same cluster will match the
same stored profile and receive the same tuned configuration, so the
service memoizes the whole :class:`~repro.core.pstorm.SubmissionResult`
per ``(job signature, dataset, cluster)`` key.

Entries age out two ways, both on the service's **simulated** clock:

- **TTL** — a result older than ``ttl_seconds`` is stale (the store may
  have learned better profiles since) and is dropped on access.
- **LRU** — beyond ``capacity`` entries, the least-recently-used key is
  evicted.

Entries are also *invalidated* eagerly: when ``remember()`` (or a
miss-path profile write) lands a new profile whose job signature matches
a cached key, the stale tuned configurations are removed so the next
request re-matches against the richer store.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..hadoop.cluster import ClusterSpec
from ..hadoop.dataset import Dataset
from ..hadoop.job import MapReduceJob
from ..observability import MetricsRegistry, get_registry

__all__ = ["CacheKey", "ResultCache", "job_signature", "cache_key_for"]


def job_signature(job: MapReduceJob) -> str:
    """A stable digest identifying a job *program* (not a run).

    Built from the job's name, its map/combine/reduce callables'
    qualified names, the I/O formats, and the user parameters — the same
    ingredients as the Table 4.3 static features, minus anything that
    varies per submission.  ``hashlib`` keeps it stable across processes
    (``hash()`` is salted per interpreter).
    """
    payload = {
        "name": job.name,
        "mapper": getattr(job.mapper, "__qualname__", repr(job.mapper)),
        "reducer": getattr(job.reducer, "__qualname__", None)
        if job.reducer is not None
        else None,
        "combiner": getattr(job.combiner, "__qualname__", None)
        if job.combiner is not None
        else None,
        "input_format": job.input_format,
        "output_format": job.output_format,
        "params": {str(k): repr(v) for k, v in sorted(job.params.items())},
    }
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return f"{job.name}#{digest[:12]}"


@dataclass(frozen=True)
class CacheKey:
    """One cacheable tuning question: (program, data, hardware)."""

    job_signature: str
    dataset: str
    cluster: str


def cache_key_for(
    job: MapReduceJob, dataset: Dataset, cluster: ClusterSpec
) -> CacheKey:
    return CacheKey(
        job_signature=job_signature(job),
        dataset=dataset.name,
        cluster=f"{cluster.name}/{cluster.num_workers}",
    )


@dataclass
class _Entry:
    value: Any
    expires_at: float


class ResultCache:
    """Thread-safe LRU + TTL cache over tuning results.

    Args:
        capacity: maximum live entries; beyond it the LRU entry goes.
        ttl_seconds: lifetime of an entry on the caller-supplied clock.
        registry: observability sink; None falls back to the module
            default.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: float = 6 * 3600.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl_seconds = float(ttl_seconds)
        self.registry = registry
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._expired = 0
        self._evicted = 0
        self._invalidated = 0
        self._fills = 0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey, now: float) -> Any | None:
        """The cached value for *key*, or None (miss or expired)."""
        registry = get_registry(self.registry)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at <= now:
                del self._entries[key]
                self._expired += 1
                registry.counter(
                    "serving_cache_evictions_total",
                    "cache entries dropped, by cause",
                    labels={"reason": "ttl"},
                ).inc()
                entry = None
            if entry is None:
                self._misses += 1
                registry.counter(
                    "serving_cache_misses_total", "result-cache misses"
                ).inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            registry.counter(
                "serving_cache_hits_total", "result-cache hits"
            ).inc()
            return entry.value

    def put(self, key: CacheKey, value: Any, now: float) -> None:
        """Insert/refresh *key*, evicting LRU entries beyond capacity."""
        registry = get_registry(self.registry)
        with self._lock:
            self._entries[key] = _Entry(value, now + self.ttl_seconds)
            self._entries.move_to_end(key)
            self._fills += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evicted += 1
                registry.counter(
                    "serving_cache_evictions_total",
                    "cache entries dropped, by cause",
                    labels={"reason": "lru"},
                ).inc()
            registry.gauge(
                "serving_cache_size", "live result-cache entries"
            ).set(len(self._entries))

    def invalidate_job(self, signature: str, keep: CacheKey | None = None) -> int:
        """Drop every entry whose job signature matches.

        Called when a new profile for this program lands in the store: a
        cached tuned configuration computed against the poorer store may
        no longer be the best answer.  *keep* spares one key (the entry
        the writer itself just cached).  Returns how many entries died.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.job_signature == signature and key != keep
            ]
            for key in stale:
                del self._entries[key]
            self._invalidated += len(stale)
        if stale:
            get_registry(self.registry).counter(
                "serving_cache_invalidations_total",
                "cache entries invalidated by profile writes",
            ).inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Deterministic counters snapshot (sorted keys)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "evicted": self._evicted,
                "expired": self._expired,
                "fills": self._fills,
                "hits": self._hits,
                "invalidated": self._invalidated,
                "misses": self._misses,
                "size": len(self._entries),
            }
