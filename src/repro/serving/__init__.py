"""Tuning-as-a-service: the concurrent multi-client PStorM frontend.

The ROADMAP's deployment model for PStorM is an always-on daemon serving
many analysts over one shared profile store.  This package supplies that
serving layer:

- :mod:`~repro.serving.service` — the :class:`TuningService`: a bounded
  request queue drained by a pool of workers, each running its own
  PStorM pipeline over the shared (resilient, maintained) store;
- :mod:`~repro.serving.cache` — the keyed result cache (LRU + TTL on
  the simulated clock, invalidated by profile writes);
- :mod:`~repro.serving.admission` — watermark load shedding and
  per-tenant token-bucket rate limiting;
- :mod:`~repro.serving.loadgen` — the deterministic open/closed-loop
  load harness behind ``repro loadgen``;
- :mod:`~repro.serving.procpool` — the multi-process backend: worker
  processes probing the shared-memory match index, a single-writer
  parent publishing generations, chaos-killable and respawned.
"""

from .admission import AdmissionController, TenantPolicy, TokenBucket
from .cache import CacheKey, ResultCache, cache_key_for, job_signature
from .errors import ServiceClosedError, ServiceOverloadError, ServingError
from .loadgen import (
    LoadConfig,
    LoadReport,
    TenantSpec,
    default_tenants,
    run_load,
    run_worker_sweep,
)
from .procpool import ProcessPoolFrontend, SnapshotStoreProxy, WorkerRuntime
from .service import ServiceConfig, TuningRequest, TuningResponse, TuningService

__all__ = [
    "ProcessPoolFrontend",
    "SnapshotStoreProxy",
    "WorkerRuntime",
    "run_worker_sweep",
    "AdmissionController",
    "TenantPolicy",
    "TokenBucket",
    "CacheKey",
    "ResultCache",
    "cache_key_for",
    "job_signature",
    "ServingError",
    "ServiceOverloadError",
    "ServiceClosedError",
    "LoadConfig",
    "LoadReport",
    "TenantSpec",
    "default_tenants",
    "run_load",
    "ServiceConfig",
    "TuningRequest",
    "TuningResponse",
    "TuningService",
]
