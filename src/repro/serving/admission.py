"""Admission control: queue-depth load shedding + per-tenant rate limits.

Two gates run, in order, before a request may join the service queue:

1. **Watermark shedding** — when the queue depth has reached the shed
   watermark, the request is refused with a ``retry-after`` hint sized
   from the current backlog, so a long outage turns into fast typed
   rejections instead of unbounded queueing (the classic overload
   failure mode).
2. **Token-bucket rate limiting** — each tenant owns a bucket refilled
   at ``rate_per_second`` up to ``burst``; an empty bucket refuses the
   request with the exact time until the next token.

Both gates run on the caller-supplied clock (virtual in the load
harness, monotonic wall time under ``repro serve``), so the loadgen's
admission decisions are bit-reproducible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..observability import MetricsRegistry, get_registry
from .errors import ServiceOverloadError

__all__ = ["TokenBucket", "TenantPolicy", "AdmissionController"]


class TokenBucket:
    """A deterministic token bucket on an external clock."""

    def __init__(self, rate_per_second: float, burst: float) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate_per_second = float(rate_per_second)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at: float | None = None

    def _refill(self, now: float) -> None:
        if self._refilled_at is None:
            self._refilled_at = now
            return
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_second)
        self._refilled_at = now

    def try_acquire(self, now: float, amount: float = 1.0) -> bool:
        """Take *amount* tokens if available; never blocks."""
        self._refill(now)
        if self._tokens + 1e-12 >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, now: float, amount: float = 1.0) -> float:
        """Seconds until *amount* tokens will be available."""
        self._refill(now)
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_per_second

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """Rate-limit knobs for one tenant."""

    rate_per_second: float = 50.0
    burst: float = 100.0


class AdmissionController:
    """The service's front gate.

    Args:
        queue_capacity: hard bound of the request queue.
        shed_watermark: depth at which requests start shedding; defaults
            to ``queue_capacity`` (shed only when full).
        default_policy: rate limits for tenants without an explicit one.
        tenant_policies: per-tenant overrides, keyed by tenant name.
    """

    def __init__(
        self,
        queue_capacity: int,
        shed_watermark: int | None = None,
        default_policy: TenantPolicy | None = None,
        tenant_policies: dict[str, TenantPolicy] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.queue_capacity = queue_capacity
        self.shed_watermark = (
            queue_capacity if shed_watermark is None else shed_watermark
        )
        if not 1 <= self.shed_watermark <= queue_capacity:
            raise ValueError("watermark must be in [1, queue_capacity]")
        self.default_policy = default_policy or TenantPolicy()
        self.tenant_policies = dict(tenant_policies or {})
        self.registry = registry
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.tenant_policies.get(tenant, self.default_policy)
            bucket = TokenBucket(policy.rate_per_second, policy.burst)
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    def admit(
        self,
        tenant: str,
        queue_depth: int,
        now: float,
        backlog_seconds_hint: float = 1.0,
    ) -> None:
        """Admit one request or raise :class:`ServiceOverloadError`.

        Args:
            queue_depth: requests currently waiting (not yet started).
            now: the admission clock reading.
            backlog_seconds_hint: the service's estimate of how long the
                present backlog takes to drain; becomes the queue-full
                ``retry-after`` hint.
        """
        registry = get_registry(self.registry)
        with self._lock:
            if queue_depth >= self.shed_watermark:
                registry.counter(
                    "serving_shed_total",
                    "requests refused at admission, by reason",
                    labels={"reason": "queue-full"},
                ).inc()
                raise ServiceOverloadError(
                    "queue-full",
                    retry_after_seconds=max(backlog_seconds_hint, 0.001),
                    tenant=tenant,
                )
            bucket = self._bucket(tenant)
            if not bucket.try_acquire(now):
                registry.counter(
                    "serving_shed_total",
                    "requests refused at admission, by reason",
                    labels={"reason": "rate-limited"},
                ).inc()
                raise ServiceOverloadError(
                    "rate-limited",
                    retry_after_seconds=bucket.retry_after(now),
                    tenant=tenant,
                )
        registry.counter(
            "serving_admitted_total", "requests past the admission gates"
        ).inc()
