"""Deterministic load harness for the tuning service.

The generator replays seeded synthetic tenant traffic against a
:class:`~repro.serving.service.TuningService` as a **discrete-event
simulation**: arrivals, admission decisions, queue waits, and service
times all happen on the virtual clock, and every random draw comes from
one seeded ``random.Random`` — so the same seed produces a
**byte-identical** summary JSON, which is exactly what the CI smoke
compares.  (The thread frontend of ``repro serve`` exercises real
concurrency instead; it is deliberately *not* byte-deterministic.)

Two traffic shapes:

- **open** — arrivals are a Poisson process at ``arrival_rate``
  requests/second, regardless of how the service is coping (the shape
  that exposes overload: queues grow, the watermark sheds);
- **closed** — ``clients`` loop submit → wait for the answer → think;
  load self-regulates with service latency.

A slice of arrivals (every ``remember_every``-th) are ``remember()``
writes instead of tuning questions, so cache invalidation and the
store's write path stay hot under load.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from ..hadoop.cluster import ClusterSpec, ec2_cluster
from ..hadoop.dataset import Dataset
from ..hadoop.job import MapReduceJob
from ..observability import MetricsRegistry, get_registry
from ..workloads import (
    bigram_relative_frequency_job,
    grep_job,
    inverted_index_job,
    word_count_job,
)
from ..workloads.text import random_text_source
from .admission import TenantPolicy
from .errors import ServiceOverloadError
from .service import ServiceConfig, TuningRequest, TuningResponse, TuningService

__all__ = [
    "TenantSpec",
    "LoadConfig",
    "LoadReport",
    "run_load",
    "run_worker_sweep",
    "default_tenants",
]

MB = 1 << 20


@dataclass(frozen=True)
class TenantSpec:
    """One synthetic tenant: traffic share plus rate-limit policy."""

    name: str
    weight: float = 1.0
    rate_per_second: float = 50.0
    burst: float = 100.0

    @property
    def policy(self) -> TenantPolicy:
        return TenantPolicy(
            rate_per_second=self.rate_per_second, burst=self.burst
        )


def default_tenants() -> list[TenantSpec]:
    """Three tenants: two well-behaved, one hot and tightly limited.

    ``burst-batch`` submits a third of the traffic through a bucket that
    only sustains one request per 20 simulated seconds — the tenant that
    makes rate-limited sheds show up in every load run.
    """
    return [
        TenantSpec("analytics", weight=4.0, rate_per_second=5.0, burst=20.0),
        TenantSpec("etl", weight=3.0, rate_per_second=5.0, burst=20.0),
        TenantSpec("burst-batch", weight=3.0, rate_per_second=0.05, burst=3.0),
    ]


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one load run (defaults match the CI smoke)."""

    requests: int = 200
    workers: int = 4
    seed: int = 7
    #: "open" (Poisson arrivals) or "closed" (think-time clients).
    mode: str = "open"
    #: Open-loop arrival rate, requests per simulated second.
    arrival_rate: float = 1.0
    #: Closed-loop population and mean think time.
    clients: int = 8
    think_seconds: float = 20.0
    #: Every Nth arrival is a remember() write (0 disables).
    remember_every: int = 25
    tenants: Sequence[TenantSpec] = field(default_factory=default_tenants)
    queue_capacity: int = 16
    shed_watermark: int | None = 12
    cache_capacity: int = 64
    cache_ttl_seconds: float = 6 * 3600.0
    deadline_seconds: float = 600.0
    store_capacity: int | None = None
    #: Simulated concurrency backend: "threads" or "processes".  The
    #: harness never starts a real frontend — it models each backend's
    #: cost structure on the virtual clock so worker-count sweeps are
    #: byte-deterministic even on a single-core CI box.
    backend: str = "threads"
    #: Threads backend: fraction of each request's service time that
    #: holds the GIL and therefore serializes across workers (0 = the
    #: pre-backend model where lanes are fully independent; 1 = the
    #: matcher/CBO-bound worst case the process backend exists to fix).
    gil_fraction: float = 0.0
    #: Process backend: per-dispatch IPC tax on every non-cached request
    #: (task pickle + result pickle + queue hop).  Charged per request —
    #: not amortized across a coalesced batch — so batched and unbatched
    #: runs of the same seed stay byte-comparable.
    ipc_cost_seconds: float = 0.004
    #: Process backend: shared-index republish cost added to remember().
    publish_cost_seconds: float = 0.05
    #: Process backend, open mode: coalesce arrivals within this window
    #: of a group's first arrival into one handle_batch call (0 = off).
    batch_window_seconds: float = 0.0
    batch_max: int = 8
    #: Region servers hosting the shared store's HBase substrate.
    num_region_servers: int = 1
    #: Read replicas per region (clamped to num_region_servers).
    replication: int = 1
    #: Rows per region before it splits; None = substrate default.
    split_threshold: int | None = None
    #: Probe through per-region scatter-gather match-index partitions.
    shard_index: bool = False
    #: Thread fan-out of sharded probes (bit-identical at any width).
    probe_workers: int = 1
    #: Tuner-family member on the hit path ("cbo" = the paper's CBO).
    tuner: str = "cbo"

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if self.requests < 1:
            raise ValueError("need at least one request")
        if self.backend not in ("threads", "processes"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not 0.0 <= self.gil_fraction <= 1.0:
            raise ValueError("gil_fraction must be within [0, 1]")

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            workers=self.workers,
            queue_capacity=self.queue_capacity,
            shed_watermark=self.shed_watermark,
            cache_capacity=self.cache_capacity,
            cache_ttl_seconds=self.cache_ttl_seconds,
            tenant_policies={t.name: t.policy for t in self.tenants},
            deadline_seconds=self.deadline_seconds,
            store_capacity=self.store_capacity,
            backend=self.backend,
            batch_window_seconds=self.batch_window_seconds,
            batch_max=self.batch_max,
            num_region_servers=self.num_region_servers,
            replication=self.replication,
            split_threshold=self.split_threshold,
            shard_index=self.shard_index,
            probe_workers=self.probe_workers,
            tuner=self.tuner,
            # Off the 0.01 cache-hit grid: warm-path percentiles resolve
            # to real values instead of clamping at one clock tick.
            cache_lookup_cost_seconds=0.0003,
        )


def loadgen_zoo() -> list[tuple[MapReduceJob, Dataset]]:
    """The (job, dataset) pairs synthetic tenants draw from.

    Small datasets (3–4 splits) keep a cache-miss pipeline cheap enough
    that a 200-request run finishes in CI time; four distinct programs ×
    two datasets give eight cache keys, so runs exercise misses, hits,
    LRU pressure, and signature-scoped invalidation.
    """
    datasets = [
        Dataset(
            "loadgen-text-192mb",
            nominal_bytes=192 * MB,
            source=random_text_source(),
            seed=41,
        ),
        Dataset(
            "loadgen-text-256mb",
            nominal_bytes=256 * MB,
            source=random_text_source(),
            seed=42,
        ),
    ]
    jobs = [
        word_count_job(),
        inverted_index_job(),
        bigram_relative_frequency_job(),
        grep_job(),
    ]
    return [(job, dataset) for job in jobs for dataset in datasets]


@dataclass
class LoadReport:
    """The run's summary, shaped for byte-stable JSON."""

    summary: dict[str, Any]
    responses: list[TuningResponse] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(self.summary, sort_keys=True, indent=2)


# ----------------------------------------------------------------------
def _percentiles(values: list[float]) -> dict[str, float]:
    """Exact-index percentile summary (deterministic, no interpolation)."""
    if not values:
        return {"max": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(values)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return round(ordered[index], 6)

    return {
        "max": round(ordered[-1], 6),
        "mean": round(sum(ordered) / len(ordered), 6),
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
    }


class _LoadRun:
    """State of one simulated run (workers, queue, tallies)."""

    def __init__(
        self,
        service: TuningService,
        config: LoadConfig,
        registry: MetricsRegistry | None,
    ) -> None:
        self.service = service
        self.config = config
        self.registry = get_registry(registry)
        self.rng = random.Random(config.seed)
        self.zoo = loadgen_zoo()
        self.tenant_names = [t.name for t in config.tenants]
        self.tenant_weights = [t.weight for t in config.tenants]
        #: Min-heap of worker free times — the "thread pool".
        self.worker_free = [0.0] * config.workers
        heapq.heapify(self.worker_free)
        #: Threads backend: when the GIL is next free.  A request's
        #: serialized slice (gil_fraction of its service time) pushes
        #: this forward; later requests cannot start before it.
        self.gil_free = 0.0
        #: Start times of assigned-but-not-yet-started requests; entries
        #: still in the future at an arrival are the queue.
        self.pending_starts: list[float] = []
        self.responses: list[TuningResponse] = []
        self.sheds: dict[str, int] = {}
        self.per_tenant: dict[str, dict[str, int]] = {
            name: {"cache_hits": 0, "ok": 0, "requests": 0, "shed": 0}
            for name in self.tenant_names
        }
        self.remembers = 0
        self.remember_failures = 0
        self.makespan = 0.0

    # ------------------------------------------------------------------
    def queue_depth(self, now: float) -> int:
        self.pending_starts = [s for s in self.pending_starts if s > now]
        return len(self.pending_starts)

    def pick_tenant(self) -> str:
        return self.rng.choices(self.tenant_names, weights=self.tenant_weights)[0]

    def pick_work(self) -> tuple[MapReduceJob, Dataset]:
        return self.zoo[self.rng.randrange(len(self.zoo))]

    def is_remember(self, index: int) -> bool:
        every = self.config.remember_every
        return every > 0 and index % every == every - 1

    # ------------------------------------------------------------------
    def arrive(
        self,
        index: int,
        now: float,
        tenant: str,
        job: MapReduceJob,
        dataset: Dataset,
    ) -> float:
        """Process one arrival; returns when the work left the system."""
        tally = self.per_tenant[tenant]
        tally["requests"] += 1
        depth = self.queue_depth(now)
        try:
            self.service.admission.admit(
                tenant,
                depth,
                now=now,
                backlog_seconds_hint=self.service.backlog_hint(depth),
            )
        except ServiceOverloadError as exc:
            self._shed(index, now, tenant, exc.reason, exc.retry_after_seconds)
            return now
        free_at = heapq.heappop(self.worker_free)
        start = max(now, free_at)
        if self.config.backend == "threads" and self.config.gil_fraction > 0:
            start = max(start, self.gil_free)
        wait = start - now
        deadline = self.config.deadline_seconds
        if wait > deadline:
            # The worker that would have served it stays free.
            heapq.heappush(self.worker_free, free_at)
            self.registry.counter(
                "serving_shed_total",
                "requests refused at admission, by reason",
                labels={"reason": "deadline"},
            ).inc()
            self._shed(index, now, tenant, "deadline", None, wait=wait)
            return now
        self.registry.histogram(
            "serving_queue_wait_seconds",
            "time requests spent queued before a worker took them",
        ).observe(wait)
        self.registry.gauge(
            "serving_queue_depth", "requests waiting in the service queue"
        ).set(depth)
        if self.is_remember(index):
            finish = self._serve_remember(index, job, dataset, start, wait, tenant)
        else:
            finish = self._serve_submit(index, job, dataset, start, wait, tenant)
        heapq.heappush(self.worker_free, finish)
        self.pending_starts.append(start)
        self.makespan = max(self.makespan, finish)
        if self.config.backend == "threads" and self.config.gil_fraction > 0:
            self.gil_free = start + self.config.gil_fraction * (finish - start)
        return finish

    def _serve_submit(
        self,
        index: int,
        job: MapReduceJob,
        dataset: Dataset,
        start: float,
        wait: float,
        tenant: str,
    ) -> float:
        request = TuningRequest(
            request_id=index + 1,
            tenant=tenant,
            job=job,
            dataset=dataset,
            seed=self.config.seed,
            submitted_at=start - wait,
        )
        response = self.service.handle(request, now=start)
        response.wait_seconds = wait
        return self._account_submit(response, tenant, start)

    def _account_submit(
        self, response: TuningResponse, tenant: str, start: float
    ) -> float:
        """Backend cost adjustment + tallies; returns the finish time."""
        if self.config.backend == "processes" and not response.cache_hit:
            # Cache hits are answered by the parent (no IPC); everything
            # else crosses the task/result queues once.
            response.service_seconds += self.config.ipc_cost_seconds
        self.responses.append(response)
        tally = self.per_tenant[tenant]
        if response.ok:
            tally["ok"] += 1
        if response.cache_hit:
            tally["cache_hits"] += 1
        return start + response.service_seconds

    def _serve_remember(
        self,
        index: int,
        job: MapReduceJob,
        dataset: Dataset,
        start: float,
        wait: float,
        tenant: str,
    ) -> float:
        job_id = self.service.remember(
            job, dataset, seed=self.config.seed, now=start
        )
        self.remembers += 1
        if job_id is None:
            self.remember_failures += 1
        cost = self.service.config.remember_cost_seconds
        if self.config.backend == "processes":
            # The single writer republishes the shared index after a put.
            cost += self.config.publish_cost_seconds
        response = TuningResponse(
            request_id=index + 1,
            tenant=tenant,
            status="ok" if job_id is not None else "failed",
            wait_seconds=wait,
            service_seconds=cost,
            error=None if job_id is not None else "remember: store unavailable",
        )
        self.responses.append(response)
        if job_id is not None:
            self.per_tenant[tenant]["ok"] += 1
        return start + cost

    def _shed(
        self,
        index: int,
        now: float,
        tenant: str,
        reason: str,
        retry_after: float | None,
        wait: float = 0.0,
    ) -> None:
        self.sheds[reason] = self.sheds.get(reason, 0) + 1
        self.per_tenant[tenant]["shed"] += 1
        self.responses.append(
            TuningResponse(
                request_id=index + 1,
                tenant=tenant,
                status="shed",
                shed_reason=reason,
                # Full resolution at record time; the summary rounds.
                retry_after_seconds=retry_after,
                wait_seconds=wait,
            )
        )

    # ------------------------------------------------------------------
    def run_open(self) -> None:
        # Draw every arrival's attributes up front, in exactly the order
        # the incremental loop drew them (gap, tenant, work, gap, ...) —
        # so batched and unbatched replays of one seed share a workload.
        plan: list[tuple[int, float, str, MapReduceJob, Dataset]] = []
        now = 0.0
        for index in range(self.config.requests):
            now += self.rng.expovariate(self.config.arrival_rate)
            tenant = self.pick_tenant()
            job, dataset = self.pick_work()
            plan.append((index, now, tenant, job, dataset))
        batching = (
            self.config.backend == "processes"
            and self.config.batch_window_seconds > 0
            and self.config.batch_max > 1
        )
        if not batching:
            for item in plan:
                self.arrive(*item)
            return
        group: list[tuple[int, float, str, MapReduceJob, Dataset]] = []
        for item in plan:
            if group and self._joins_group(group, item):
                group.append(item)
                continue
            self._flush_group(group)
            group = [item]
        self._flush_group(group)

    def _joins_group(
        self,
        group: list[tuple[int, float, str, MapReduceJob, Dataset]],
        item: tuple[int, float, str, MapReduceJob, Dataset],
    ) -> bool:
        """May *item* join the open coalescing group without changing any
        member's start time from what sequential replay would pick?

        Joining needs: neither end is a remember() write, the arrival is
        within the window of the group's first arrival, the group has
        room, and there are enough lanes already idle at the window start
        that every member (plus this one) starts at its own arrival time
        with zero wait — the condition that makes deferred finish-pushes
        invisible to the worker heap.
        """
        index, now, __, __, __ = item
        first_index, first_now = group[0][0], group[0][1]
        if self.is_remember(index) or self.is_remember(first_index):
            return False
        if now - first_now > self.config.batch_window_seconds:
            return False
        if len(group) >= self.config.batch_max:
            return False
        idle = sum(1 for free_at in self.worker_free if free_at <= first_now)
        return idle > len(group)

    def _flush_group(
        self, group: list[tuple[int, float, str, MapReduceJob, Dataset]]
    ) -> None:
        """Serve one coalesced group through a single handle_batch call."""
        if not group:
            return
        if len(group) == 1:
            self.arrive(*group[0])
            return
        members = []
        for index, now, tenant, job, dataset in group:
            self.per_tenant[tenant]["requests"] += 1
            depth = self.queue_depth(now)
            try:
                self.service.admission.admit(
                    tenant,
                    depth,
                    now=now,
                    backlog_seconds_hint=self.service.backlog_hint(depth),
                )
            except ServiceOverloadError as exc:
                self._shed(
                    index, now, tenant, exc.reason, exc.retry_after_seconds
                )
                continue
            free_at = heapq.heappop(self.worker_free)
            start = max(now, free_at)  # == now: the group held an idle lane
            wait = start - now
            self.registry.histogram(
                "serving_queue_wait_seconds",
                "time requests spent queued before a worker took them",
            ).observe(wait)
            self.registry.gauge(
                "serving_queue_depth", "requests waiting in the service queue"
            ).set(depth)
            request = TuningRequest(
                request_id=index + 1,
                tenant=tenant,
                job=job,
                dataset=dataset,
                seed=self.config.seed,
                submitted_at=start - wait,
            )
            members.append((tenant, start, wait, request))
        if not members:
            return
        responses = self.service.handle_batch(
            [request for __, __, __, request in members],
            nows=[start for __, start, __, __ in members],
        )
        for (tenant, start, wait, __), response in zip(members, responses):
            response.wait_seconds = wait
            finish = self._account_submit(response, tenant, start)
            heapq.heappush(self.worker_free, finish)
            self.pending_starts.append(start)
            self.makespan = max(self.makespan, finish)

    def run_closed(self) -> None:
        # Heap of (next submission time, client id); each client owns a
        # tenant for its whole session.
        clients = []
        for client_id in range(self.config.clients):
            first = self.rng.expovariate(1.0 / self.config.think_seconds)
            clients.append((first, client_id, self.pick_tenant()))
        heapq.heapify(clients)
        for index in range(self.config.requests):
            now, client_id, tenant = heapq.heappop(clients)
            job, dataset = self.pick_work()
            done_at = self.arrive(index, now, tenant, job, dataset)
            think = self.rng.expovariate(1.0 / self.config.think_seconds)
            heapq.heappush(clients, (done_at + think, client_id, tenant))

    # ------------------------------------------------------------------
    def report(self) -> LoadReport:
        ok = [r for r in self.responses if r.status == "ok"]
        failed = [r for r in self.responses if r.status == "failed"]
        served = ok + failed
        hits = sum(1 for r in ok if r.cache_hit)
        degraded = sum(1 for r in ok if r.degraded)
        try:
            store_profiles = len(self.service.store)
        except Exception:  # noqa: BLE001 — an outage mid-scan is expected
            store_profiles = None
        total_handled = len(served)
        summary = {
            "config": {
                "arrival_rate": self.config.arrival_rate,
                "backend": self.config.backend,
                "mode": self.config.mode,
                "remember_every": self.config.remember_every,
                "requests": self.config.requests,
                "seed": self.config.seed,
                "workers": self.config.workers,
            },
            "counts": {
                "cache_hits": hits,
                "degraded": degraded,
                "failed": len(failed),
                "ok": len(ok),
                "remember_failures": self.remember_failures,
                "remembers": self.remembers,
                "requests": len(self.responses),
                "shed": dict(sorted(self.sheds.items())),
                "shed_total": sum(self.sheds.values()),
            },
            "cache": self.service.cache.stats(),
            "latency": {
                "service_seconds": _percentiles(
                    [r.service_seconds for r in served]
                ),
                "total_seconds": _percentiles(
                    [r.wait_seconds + r.service_seconds for r in served]
                ),
                "wait_seconds": _percentiles([r.wait_seconds for r in served]),
            },
            "makespan_seconds": round(self.makespan, 6),
            "per_tenant": self.per_tenant,
            "store_profiles": store_profiles,
            "throughput_rps": round(total_handled / self.makespan, 6)
            if self.makespan > 0
            else 0.0,
        }
        return LoadReport(summary=summary, responses=self.responses)


def run_load(
    config: LoadConfig | None = None,
    cluster: ClusterSpec | None = None,
    service: TuningService | None = None,
    registry: MetricsRegistry | None = None,
) -> LoadReport:
    """Replay one seeded load run; same config + seed → identical report.

    Args:
        config: traffic shape and service knobs; CI-smoke defaults.
        cluster: simulated cluster (fresh EC2 shape if omitted).
        service: an existing service to load (a fresh one if omitted —
            pass one to test chaos wiring or shared-store setups).
        registry: metrics sink for the run's serving metrics.
    """
    if config is None:
        config = LoadConfig()
    if service is None:
        service = TuningService(
            cluster=cluster,
            config=config.service_config(),
            seed=config.seed,
            registry=registry,
        )
    run = _LoadRun(service, config, registry)
    if config.mode == "open":
        run.run_open()
    else:
        run.run_closed()
    return run.report()


def run_worker_sweep(
    config: LoadConfig,
    worker_counts: Sequence[int],
    cluster: ClusterSpec | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[int, LoadReport]:
    """Replay the same seeded workload at several worker counts.

    Each count gets a fresh service (fresh store, cache, clock), so the
    only variable across runs is parallelism — the scaling-benchmark
    shape.  Returns ``{workers: report}`` in the given order.
    """
    sweep: dict[int, LoadReport] = {}
    for count in worker_counts:
        sweep[count] = run_load(
            replace(config, workers=count), cluster=cluster, registry=registry
        )
    return sweep
