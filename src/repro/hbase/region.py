"""Regions: horizontally partitioned, row-key-sorted storage units.

A region holds all rows of one table in a contiguous key range
``[start_key, end_key)``.  Rows map column families to qualifier->cell
maps; cells are versioned with a logical timestamp, and reads return the
latest version, mirroring HBase semantics.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from .errors import UnknownColumnFamilyError

__all__ = ["Cell", "Region"]

_timestamp_counter = itertools.count(1)


@dataclass(frozen=True)
class Cell:
    """One versioned cell value."""

    value: Any
    timestamp: int


class Region:
    """A sorted slice of a table's row space.

    Attributes:
        table_name: owning table.
        start_key: inclusive lower bound (``""`` = unbounded).
        end_key: exclusive upper bound (``None`` = unbounded).
    """

    def __init__(
        self,
        table_name: str,
        families: tuple[str, ...],
        start_key: str = "",
        end_key: str | None = None,
    ) -> None:
        self.table_name = table_name
        self.families = families
        self.start_key = start_key
        self.end_key = end_key
        #: row_key -> family -> qualifier -> list[Cell] (newest last)
        self._rows: dict[str, dict[str, dict[str, list[Cell]]]] = {}
        self._sorted_keys: list[str] | None = []

    # ------------------------------------------------------------------
    def contains_key(self, row_key: str) -> bool:
        if row_key < self.start_key:
            return False
        if self.end_key is not None and row_key >= self.end_key:
            return False
        return True

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def _keys(self) -> list[str]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._rows)
        return self._sorted_keys

    # ------------------------------------------------------------------
    def put(self, row_key: str, family: str, qualifier: str, value: Any) -> None:
        """Write one cell (new version appended)."""
        if family not in self.families:
            raise UnknownColumnFamilyError(
                f"table {self.table_name!r} has no column family {family!r}"
            )
        row = self._rows.get(row_key)
        if row is None:
            row = {f: {} for f in self.families}
            self._rows[row_key] = row
            self._sorted_keys = None
        cells = row[family].setdefault(qualifier, [])
        cells.append(Cell(value=value, timestamp=next(_timestamp_counter)))

    def delete_row(self, row_key: str) -> bool:
        """Remove a whole row; returns whether it existed."""
        if row_key in self._rows:
            del self._rows[row_key]
            self._sorted_keys = None
            return True
        return False

    # ------------------------------------------------------------------
    def get(self, row_key: str) -> dict[str, dict[str, Any]] | None:
        """Latest-version view of one row, or None."""
        row = self._rows.get(row_key)
        if row is None:
            return None
        return self._latest_view(row)

    @staticmethod
    def _latest_view(
        row: dict[str, dict[str, list[Cell]]]
    ) -> dict[str, dict[str, Any]]:
        return {
            family: {qual: cells[-1].value for qual, cells in columns.items()}
            for family, columns in row.items()
            if columns
        }

    def scan(
        self, start: str | None = None, stop: str | None = None
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """Yield ``(row_key, row)`` in key order within [start, stop)."""
        keys = self._keys()
        lo = bisect.bisect_left(keys, start) if start is not None else 0
        hi = bisect.bisect_left(keys, stop) if stop is not None else len(keys)
        for key in keys[lo:hi]:
            yield key, self._latest_view(self._rows[key])

    # ------------------------------------------------------------------
    def split(self) -> tuple["Region", "Region"]:
        """Split this region at its median key into two daughters."""
        keys = self._keys()
        if len(keys) < 2:
            raise ValueError("cannot split a region with fewer than 2 rows")
        mid_key = keys[len(keys) // 2]
        left = Region(self.table_name, self.families, self.start_key, mid_key)
        right = Region(self.table_name, self.families, mid_key, self.end_key)
        for key, row in self._rows.items():
            target = left if key < mid_key else right
            target._rows[key] = row
        left._sorted_keys = None
        right._sorted_keys = None
        return left, right

    def __repr__(self) -> str:
        end = self.end_key if self.end_key is not None else "∞"
        return (
            f"Region({self.table_name!r}, [{self.start_key!r}, {end!r}), "
            f"rows={self.num_rows})"
        )
