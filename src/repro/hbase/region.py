"""Regions: horizontally partitioned, row-key-sorted storage units.

A region holds all rows of one table in a contiguous key range
``[start_key, end_key)``.  Rows map column families to qualifier->cell
maps; cells are versioned with a logical timestamp, and reads return the
latest version, mirroring HBase semantics.

Each region owns one :class:`~repro.hbase.storage.LsmStore` — the row
maps are its values — so every row write takes the full HBase write
path (WAL append, memstore, flush, leveled compaction), and a region
built on a ``data_dir``-backed store is durable: the cluster hands
restored regions a recovered store and the rows come back from
SSTables plus the WAL tail.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .errors import UnknownColumnFamilyError
from .storage import LsmStore

__all__ = ["Cell", "Region", "encode_cells", "decode_cells"]


class _TimestampOracle:
    """Process-wide logical cell clock; replayed cells push it forward
    so timestamps stay monotone across a restore."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def __next__(self) -> int:
        self._value += 1
        return self._value

    def ensure_above(self, timestamp: int) -> None:
        if timestamp > self._value:
            self._value = timestamp


_timestamp_counter = _TimestampOracle()


@dataclass(frozen=True)
class Cell:
    """One versioned cell value."""

    value: Any
    timestamp: int


def encode_cells(row: dict[str, dict[str, list[Cell]]]) -> dict[str, Any]:
    """Serialize a row (family -> qualifier -> cell list) to JSON form."""
    return {
        family: {
            qualifier: [[cell.value, cell.timestamp] for cell in cells]
            for qualifier, cells in columns.items()
        }
        for family, columns in row.items()
    }


def decode_cells(payload: dict[str, Any]) -> dict[str, dict[str, list[Cell]]]:
    """Rebuild a row from its JSON form, advancing the timestamp oracle
    past every replayed cell so new writes stay newest."""
    row: dict[str, dict[str, list[Cell]]] = {}
    for family, columns in payload.items():
        decoded: dict[str, list[Cell]] = {}
        for qualifier, cells in columns.items():
            rebuilt = [Cell(value=value, timestamp=int(ts)) for value, ts in cells]
            for cell in rebuilt:
                _timestamp_counter.ensure_above(cell.timestamp)
            decoded[qualifier] = rebuilt
        row[family] = decoded
    return row


class Region:
    """A sorted slice of a table's row space.

    Attributes:
        table_name: owning table.
        start_key: inclusive lower bound (``""`` = unbounded).
        end_key: exclusive upper bound (``None`` = unbounded).
        store: the backing LSM store (an in-memory one is created when
            not supplied; the cluster supplies durable ones).
    """

    def __init__(
        self,
        table_name: str,
        families: tuple[str, ...],
        start_key: str = "",
        end_key: str | None = None,
        store: LsmStore | None = None,
    ) -> None:
        self.table_name = table_name
        self.families = families
        self.start_key = start_key
        self.end_key = end_key
        if store is None:
            store = LsmStore(value_encoder=encode_cells, value_decoder=decode_cells)
        self.store = store

    # ------------------------------------------------------------------
    def contains_key(self, row_key: str) -> bool:
        if row_key < self.start_key:
            return False
        if self.end_key is not None and row_key >= self.end_key:
            return False
        return True

    @property
    def num_rows(self) -> int:
        return self.store.num_keys

    # ------------------------------------------------------------------
    def put(self, row_key: str, family: str, qualifier: str, value: Any) -> None:
        """Write one cell (new version appended) via the LSM write path."""
        if family not in self.families:
            raise UnknownColumnFamilyError(
                f"table {self.table_name!r} has no column family {family!r}"
            )
        found, row, __ = self.store.get(row_key)
        if not found:
            row = {f: {} for f in self.families}
        cells = row[family].setdefault(qualifier, [])
        cells.append(Cell(value=value, timestamp=next(_timestamp_counter)))
        self.store.put(row_key, row)

    def delete_row(self, row_key: str) -> bool:
        """Tombstone a whole row; returns whether it existed."""
        found, __, __ = self.store.get(row_key)
        if not found:
            return False
        self.store.delete(row_key)
        return True

    # ------------------------------------------------------------------
    def get(self, row_key: str) -> dict[str, dict[str, Any]] | None:
        """Latest-version view of one row, or None."""
        found, row, __ = self.store.get(row_key)
        if not found:
            return None
        return self._latest_view(row)

    @staticmethod
    def _latest_view(
        row: dict[str, dict[str, list[Cell]]]
    ) -> dict[str, dict[str, Any]]:
        return {
            family: {qual: cells[-1].value for qual, cells in columns.items()}
            for family, columns in row.items()
            if columns
        }

    def scan(
        self, start: str | None = None, stop: str | None = None
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """Yield ``(row_key, row)`` in key order within [start, stop)."""
        keys, rows = self.store.sorted_view()
        lo = bisect.bisect_left(keys, start) if start is not None else 0
        hi = bisect.bisect_left(keys, stop) if stop is not None else len(keys)
        for key in keys[lo:hi]:
            yield key, self._latest_view(rows[key])

    # ------------------------------------------------------------------
    def split(
        self, make_store: Callable[[], LsmStore] | None = None
    ) -> tuple["Region", "Region"]:
        """Split this region at its median key into two daughters.

        *make_store* supplies each daughter's backing store (the cluster
        passes a durable factory); rows copy with their full cell
        history, so timestamps — and therefore latest-version reads —
        are preserved.
        """
        keys, rows = self.store.sorted_view()
        if len(keys) < 2:
            raise ValueError("cannot split a region with fewer than 2 rows")
        mid_key = keys[len(keys) // 2]
        left = Region(
            self.table_name,
            self.families,
            self.start_key,
            mid_key,
            store=make_store() if make_store is not None else None,
        )
        right = Region(
            self.table_name,
            self.families,
            mid_key,
            self.end_key,
            store=make_store() if make_store is not None else None,
        )
        with left.store.deferred(), right.store.deferred():
            for key in keys:
                target = left if key < mid_key else right
                target.store.put(key, rows[key])
        return left, right

    @classmethod
    def merge(
        cls,
        left: "Region",
        right: "Region",
        make_store: Callable[[], LsmStore] | None = None,
    ) -> "Region":
        """Merge two *adjacent* regions into one spanning both ranges.

        The inverse of :meth:`split`: rows copy with their full cell
        history into one region covering ``[left.start_key,
        right.end_key)``.  Raises ``ValueError`` unless the regions are
        key-adjacent siblings of the same table.
        """
        if left.table_name != right.table_name:
            raise ValueError("cannot merge regions of different tables")
        if left.end_key != right.start_key:
            raise ValueError(
                f"regions are not adjacent: [{left.start_key!r}, "
                f"{left.end_key!r}) / [{right.start_key!r}, {right.end_key!r})"
            )
        merged = cls(
            left.table_name,
            left.families,
            left.start_key,
            right.end_key,
            store=make_store() if make_store is not None else None,
        )
        with merged.store.deferred():
            for source in (left, right):
                keys, rows = source.store.sorted_view()
                for key in keys:
                    merged.store.put(key, rows[key])
        return merged

    def __repr__(self) -> str:
        end = self.end_key if self.end_key is not None else "∞"
        return (
            f"Region({self.table_name!r}, [{self.start_key!r}, {end!r}), "
            f"rows={self.num_rows})"
        )
