"""The write-ahead log: length-prefixed, checksummed, group-committed.

Every region store appends a :class:`WalRecord` here *before* mutating
its memstore, so a crash at any instant loses at most the records that
were never synced — and recovery replays exactly the acked prefix.

Record framing (all integers big-endian)::

    +----------+----------+------------------+
    | length   | crc32    | payload          |
    | 4 bytes  | 4 bytes  | `length` bytes   |
    +----------+----------+------------------+

The payload is a compact JSON array ``[sequence, op, key, value]``.
A torn write (crash mid-append) leaves a partial frame at the tail;
a flipped bit anywhere breaks the CRC.  :func:`decode_frames` is total:
it never raises on arbitrary bytes, returning the intact record prefix
plus a diagnosis of the discarded tail, which recovery surfaces as a
typed :class:`~repro.hbase.errors.CorruptWalError` — never a panic.

Durability semantics are modelled on the simulated clock: ``sync()`` is
the fsync point.  With ``group_commit=N`` appends buffer in memory and
one sync makes N records durable at the cost of a single fsync delay —
the classic group-commit amortization, observable through
``wal_syncs_total`` versus ``wal_appends_total`` and through the
virtual clock's advance.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..observability import MetricsRegistry, get_registry
from .errors import CorruptWalError

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "encode_frame",
    "decode_frame",
    "decode_frames",
    "encode_record",
    "decode_record",
]

#: ``(length, crc32)`` frame header.
_HEADER = struct.Struct(">II")
HEADER_SIZE = _HEADER.size

#: Default virtual fsync latency (seconds) charged per ``sync()``.
DEFAULT_SYNC_DELAY = 0.0005


@dataclass(frozen=True)
class WalRecord:
    """One durable log record (replayed on recovery).

    ``op`` is ``"put"`` or ``"delete"``; deletes carry no value.
    """

    sequence: int
    op: str
    key: str
    value: Any = None


def encode_record(
    record: WalRecord, value_encoder: Callable[[Any], Any] | None = None
) -> bytes:
    """Serialize one record to its JSON payload (no frame)."""
    value = record.value
    if value_encoder is not None and record.op == "put":
        value = value_encoder(value)
    payload = [record.sequence, record.op, record.key, value]
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_record(
    data: bytes, value_decoder: Callable[[Any], Any] | None = None
) -> WalRecord:
    """Parse one payload back into a :class:`WalRecord`.

    Raises:
        CorruptWalError: the bytes are not a well-formed record.  Every
            malformation — bad UTF-8, bad JSON, wrong shape, wrong
            types — maps to this one typed error.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptWalError(f"undecodable WAL payload: {exc}") from exc
    if (
        not isinstance(payload, list)
        or len(payload) != 4
        or not isinstance(payload[0], int)
        or isinstance(payload[0], bool)
        or not isinstance(payload[1], str)
        or not isinstance(payload[2], str)
    ):
        raise CorruptWalError(f"malformed WAL record shape: {payload!r}")
    sequence, op, key, value = payload
    if op not in ("put", "delete"):
        raise CorruptWalError(f"unknown WAL op {op!r}")
    if value_decoder is not None and op == "put":
        value = value_decoder(value)
    return WalRecord(sequence=sequence, op=op, key=key, value=value)


def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload in the length+CRC frame."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(data: bytes) -> tuple[bytes | None, str | None]:
    """Decode exactly one frame from *data* (which must span it fully).

    Total over arbitrary bytes, like :func:`decode_frames`.  Returns
    ``(payload, None)`` when *data* is one intact frame, else
    ``(None, diagnosis)``.  SSTable block and footer reads share this
    with the WAL so both substrates fail torn/corrupt bytes the same
    way: a typed diagnosis, never garbage.
    """
    if len(data) < HEADER_SIZE:
        return None, "torn frame header"
    length, crc = _HEADER.unpack_from(data, 0)
    if length != len(data) - HEADER_SIZE:
        return None, "torn frame payload"
    payload = bytes(data[HEADER_SIZE:])
    if zlib.crc32(payload) != crc:
        return None, "frame checksum mismatch"
    return payload, None


def decode_frames(data: bytes) -> tuple[list[bytes], int, str | None]:
    """Split a byte stream into intact frame payloads.

    Total over arbitrary bytes.  Returns ``(payloads, clean_length,
    error)``: the payloads of every intact frame prefix, the byte offset
    up to which the stream is sound, and ``None`` or a human-readable
    diagnosis of why decoding stopped (torn header, torn payload, or a
    checksum mismatch).  Bytes past ``clean_length`` are the tail a
    recovery discards.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            return payloads, offset, "torn frame header at tail"
        length, crc = _HEADER.unpack_from(data, offset)
        if length > total - offset - HEADER_SIZE:
            return payloads, offset, "torn frame payload at tail"
        payload = bytes(data[offset + HEADER_SIZE : offset + HEADER_SIZE + length])
        if zlib.crc32(payload) != crc:
            return payloads, offset, "frame checksum mismatch"
        payloads.append(payload)
        offset += HEADER_SIZE + length
    return payloads, offset, None


class WriteAheadLog:
    """An append-only, group-committed record log for one region store.

    Args:
        path: backing file; ``None`` keeps the log purely in memory
            (the pre-durability substrate behaviour).
        group_commit: records buffered per fsync.  1 syncs every append;
            larger values batch, and :meth:`sync` is the explicit flush.
        sync_delay_seconds: virtual latency charged to *clock* per sync
            (the modelled fsync cost).
        clock: the simulated clock fsyncs advance; owned by the store.
        value_encoder / value_decoder: hooks mapping stored values to
            JSON-able payloads and back (regions store cell maps).
    """

    def __init__(
        self,
        path: Path | str | None = None,
        group_commit: int = 1,
        sync_delay_seconds: float = DEFAULT_SYNC_DELAY,
        clock: Any = None,
        registry: MetricsRegistry | None = None,
        value_encoder: Callable[[Any], Any] | None = None,
        value_decoder: Callable[[Any], Any] | None = None,
    ) -> None:
        if group_commit < 1:
            raise ValueError("group_commit must be at least 1")
        self.path = Path(path) if path is not None else None
        self.group_commit = group_commit
        self.sync_delay_seconds = sync_delay_seconds
        self.clock = clock
        self.registry = registry
        self._value_encoder = value_encoder
        self._value_decoder = value_decoder
        #: When False, appends never trigger an implicit group commit —
        #: the owner is batching and will call :meth:`sync` itself.
        self.auto_sync = True
        #: Framed-but-unsynced bytes; lost if the process dies now.
        self._buffer: list[bytes] = []
        self._buffered_records: list[WalRecord] = []
        #: Records that have reached their fsync point, oldest first.
        self.records: list[WalRecord] = []
        self.appends = 0
        self.syncs = 0
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")

    # ------------------------------------------------------------------
    def _counter(self, name: str, description: str):
        return get_registry(self.registry).counter(name, description)

    def append(self, record: WalRecord) -> None:
        """Frame and buffer one record; group-commits when the batch fills.

        Byte framing only happens when a backing file exists: an
        in-memory log keeps the record objects but never materializes
        their JSON frames (nothing would ever read them), which is the
        difference between microseconds and milliseconds per cell write
        at soak-test scale.
        """
        if self._file is not None:
            self._buffer.append(
                encode_frame(encode_record(record, self._value_encoder))
            )
        self._buffered_records.append(record)
        self.appends += 1
        self._counter("wal_appends_total", "records appended to region WALs").inc()
        if self.auto_sync and len(self._buffered_records) >= self.group_commit:
            self.sync()

    def sync(self) -> None:
        """The fsync point: everything buffered becomes durable at once."""
        if not self._buffered_records:
            return
        if self._file is not None:
            self._file.write(b"".join(self._buffer))
            self._file.flush()
            os.fsync(self._file.fileno())
        self.records.extend(self._buffered_records)
        self._buffer = []
        self._buffered_records = []
        self.syncs += 1
        if self.clock is not None:
            self.clock.advance(self.sync_delay_seconds)
        self._counter("wal_syncs_total", "group commits (fsync points)").inc()

    def discard_pending(self) -> None:
        """Drop buffered records without writing them — what a process
        kill does to an unsynced group-commit batch.  The batching
        scope calls this when it unwinds on an error, so a torn logical
        write can never become durable piecemeal."""
        self._buffer = []
        self._buffered_records = []

    def reset(self) -> None:
        """Truncate the log (called after a flush makes its records
        durable in an SSTable); unsynced buffered records are dropped."""
        self._buffer = []
        self._buffered_records = []
        self.records = []
        if self._file is not None:
            self._file.truncate(0)
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Buffered records that have not reached their fsync point."""
        return len(self._buffered_records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: Path | str,
        repair: bool = True,
        registry: MetricsRegistry | None = None,
        value_decoder: Callable[[Any], Any] | None = None,
    ) -> tuple[list[WalRecord], str | None]:
        """Replay a WAL file, tolerating a torn or corrupt tail.

        Returns ``(records, tail_error)`` where *records* is the intact
        prefix and *tail_error* diagnoses any discarded tail (``None``
        when the file was clean).  With ``repair=True`` the file is
        truncated back to its clean length so subsequent appends extend
        a sound log.  Never raises on corrupt input.
        """
        path = Path(path)
        if not path.exists():
            return [], None
        data = path.read_bytes()
        payloads, clean_length, error = decode_frames(data)
        records: list[WalRecord] = []
        for position, payload in enumerate(payloads):
            try:
                records.append(decode_record(payload, value_decoder))
            except CorruptWalError as exc:
                # A frame that checksums but does not parse: damage was
                # written as-is.  Keep the records before it, discard
                # from here on.
                error = f"unparseable record #{position}: {exc}"
                clean_length = sum(
                    HEADER_SIZE + len(p) for p in payloads[:position]
                )
                break
        reg = get_registry(registry)
        reg.counter(
            "wal_replayed_records_total", "records recovered from WAL replay"
        ).inc(len(records))
        if error is not None:
            reg.counter(
                "wal_corrupt_records_total",
                "torn or corrupt WAL tails discarded during recovery",
            ).inc()
            if repair and clean_length < len(data):
                with open(path, "r+b") as handle:
                    handle.truncate(clean_length)
        return records, error
