"""Bloom filters for the LSM read path — one per SSTable *block*.

HBase attaches Bloom filters to its HFiles so a point read skips data
that provably cannot contain the key.  Here the binary block-sharded
format (:mod:`repro.hbase.sstable`) carries one filter per ~4 KiB cell
block, serialized in the file footer: a cold probe binary-searches the
block index to the single candidate block and consults only that
block's filter, so the worst-case read is one block per table whose
filter *might* match — not one whole file.  Legacy JSON tables keep a
table-level filter in the manifest (their file is one block).  Either
way a ``get`` touches only the blocks the filters pass
(``bloom_skipped_blocks_total`` counts the ones it didn't, per block).

The filter is the textbook double-hashing construction — ``k`` probe
positions derived as ``h1 + i*h2`` from one 128-bit blake2b digest —
which is deterministic across processes and Python hash seeds, so
serialized filters (``to_dict``/``from_dict``) are portable and a
seeded test sweep is reproducible.
"""

from __future__ import annotations

import base64
import hashlib
import math
from typing import Any, Iterator, Mapping

__all__ = ["BloomFilter"]

#: Floor on the bit-array size; keeps tiny tables' filters meaningful.
_MIN_BITS = 64


class BloomFilter:
    """A serializable Bloom filter over string keys.

    Args:
        capacity: expected number of keys (sizes the bit array).
        target_fpr: designed false-positive rate at *capacity* keys.
        seed: salts the hash function; distinct seeds give independent
            filters (the FPR property test sweeps this).
    """

    def __init__(
        self, capacity: int, target_fpr: float = 0.01, seed: int = 0
    ) -> None:
        if capacity < 1:
            capacity = 1
        if not 0.0 < target_fpr < 1.0:
            raise ValueError("target_fpr must be in (0, 1)")
        ln2 = math.log(2.0)
        num_bits = max(
            _MIN_BITS, int(math.ceil(-capacity * math.log(target_fpr) / (ln2 * ln2)))
        )
        self.capacity = capacity
        self.target_fpr = target_fpr
        self.seed = seed
        self.num_bits = num_bits
        self.num_hashes = max(1, round(num_bits / capacity * ln2))
        self._bits = bytearray((num_bits + 7) // 8)
        self.added = 0

    # ------------------------------------------------------------------
    def _positions(self, key: str) -> Iterator[int]:
        digest = hashlib.blake2b(
            key.encode("utf-8"),
            digest_size=16,
            key=self.seed.to_bytes(8, "big", signed=False),
        ).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd: full cycle
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.added += 1

    def might_contain(self, key: str) -> bool:
        """False means *definitely absent*; True means *probably present*."""
        for position in self._positions(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "target_fpr": self.target_fpr,
            "seed": self.seed,
            "added": self.added,
            "bits": base64.b64encode(bytes(self._bits)).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BloomFilter":
        bloom = cls(
            capacity=int(payload["capacity"]),
            target_fpr=float(payload["target_fpr"]),
            seed=int(payload.get("seed", 0)),
        )
        bits = base64.b64decode(payload["bits"])
        if len(bits) != len(bloom._bits):
            raise ValueError("bloom payload does not match its declared shape")
        bloom._bits = bytearray(bits)
        bloom.added = int(payload.get("added", 0))
        return bloom

    def saturation(self) -> float:
        """Fraction of bits set (a health signal: >0.5 degrades the FPR)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(capacity={self.capacity}, fpr={self.target_fpr}, "
            f"bits={self.num_bits}, k={self.num_hashes}, added={self.added})"
        )
