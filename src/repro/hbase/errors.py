"""Exceptions raised by the HBase substrate."""

from __future__ import annotations

__all__ = [
    "HBaseError",
    "TableExistsError",
    "TableNotFoundError",
    "UnknownColumnFamilyError",
    "UnknownFilterError",
    "TransientError",
    "ServerUnavailableError",
    "CorruptWalError",
    "CorruptSSTableError",
    "SimulatedCrashError",
    "WorkerKilledError",
    "RETRYABLE_ERRORS",
]


class HBaseError(Exception):
    """Base class for HBase substrate errors."""


class TableExistsError(HBaseError):
    """Raised when creating a table whose name is already taken."""


class TableNotFoundError(HBaseError):
    """Raised when opening or dropping a table that does not exist."""


class UnknownColumnFamilyError(HBaseError):
    """Raised on writes to a column family not declared at creation.

    HBase fixes the set of column families when a table is created; this is
    precisely the constraint that ruled out the 'column family per feature
    type' data model in §5.1 of the paper.
    """


class UnknownFilterError(HBaseError):
    """Raised when deserializing a filter whose type is not registered."""


class TransientError(HBaseError):
    """A momentary substrate failure (RPC blip, region moving, GC pause).

    Retryable: the same operation is expected to succeed shortly, so
    clients should retry with backoff rather than propagate.
    """


class ServerUnavailableError(HBaseError):
    """A region server is down (crash window, restart, network partition).

    Retryable, but typically for longer than a :class:`TransientError`;
    recovery happens when the server's crash window ends.
    """


class CorruptWalError(HBaseError):
    """A write-ahead-log record failed framing or checksum validation.

    Raised (or recorded, in tolerant replay) when a WAL tail is torn by a
    crash mid-write or corrupted on disk.  Recovery discards the tail and
    keeps the intact prefix — this error is a *diagnosis*, never a panic,
    and it is not retryable: the bytes will not get better.
    """


class CorruptSSTableError(HBaseError):
    """A binary SSTable block or footer failed framing or checksum checks.

    Raised when a block read hits a torn frame, a CRC mismatch, a
    malformed footer, or a truncated trailer — the read path surfaces
    the damage as this one typed diagnosis instead of returning garbage
    bytes as data.  Like :class:`CorruptWalError` it is not retryable:
    the bytes will not get better; the caller falls back (re-open,
    re-replicate, or restore from snapshot) instead of looping.
    """


class SimulatedCrashError(HBaseError):
    """A chaos-injected process kill at an operation boundary.

    Unlike :class:`ServerUnavailableError` this models the *client*
    process dying mid-operation, so it is deliberately not retryable:
    the crash-recovery harness lets it propagate, abandons the store
    object, and re-opens the on-disk state — exactly what a restarted
    process would do.
    """


class WorkerKilledError(HBaseError):
    """A chaos-injected SIGKILL of one serving worker process.

    Raised by the fault injector at the process-pool ``dispatch``
    boundary (``kind="kill"``): the frontend must kill the target
    worker, respawn it, and re-dispatch the in-flight work — the request
    itself must still complete.  Not retryable at the substrate level;
    the recovery lives in :class:`repro.serving.procpool.ProcessPoolFrontend`.
    """


#: Error types a well-behaved store client retries instead of propagating.
RETRYABLE_ERRORS: tuple[type[HBaseError], ...] = (
    TransientError,
    ServerUnavailableError,
)
