"""Exceptions raised by the HBase substrate."""

from __future__ import annotations

__all__ = [
    "HBaseError",
    "TableExistsError",
    "TableNotFoundError",
    "UnknownColumnFamilyError",
    "UnknownFilterError",
    "TransientError",
    "ServerUnavailableError",
    "RETRYABLE_ERRORS",
]


class HBaseError(Exception):
    """Base class for HBase substrate errors."""


class TableExistsError(HBaseError):
    """Raised when creating a table whose name is already taken."""


class TableNotFoundError(HBaseError):
    """Raised when opening or dropping a table that does not exist."""


class UnknownColumnFamilyError(HBaseError):
    """Raised on writes to a column family not declared at creation.

    HBase fixes the set of column families when a table is created; this is
    precisely the constraint that ruled out the 'column family per feature
    type' data model in §5.1 of the paper.
    """


class UnknownFilterError(HBaseError):
    """Raised when deserializing a filter whose type is not registered."""


class TransientError(HBaseError):
    """A momentary substrate failure (RPC blip, region moving, GC pause).

    Retryable: the same operation is expected to succeed shortly, so
    clients should retry with backoff rather than propagate.
    """


class ServerUnavailableError(HBaseError):
    """A region server is down (crash window, restart, network partition).

    Retryable, but typically for longer than a :class:`TransientError`;
    recovery happens when the server's crash window ends.
    """


#: Error types a well-behaved store client retries instead of propagating.
RETRYABLE_ERRORS: tuple[type[HBaseError], ...] = (
    TransientError,
    ServerUnavailableError,
)
