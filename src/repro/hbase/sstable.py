"""Binary block-sharded SSTable files: framed blocks, footer index, cache.

The legacy durable format wrote one JSON blob per SSTable, so a cold
point read parsed the *entire* table on first touch.  This module is
the real-LSM answer (the Bigtable/HBase file shape): an ``sst_*.bin``
file is a sequence of length+CRC32-framed **cell blocks** (target
``block_size`` bytes of encoded cells each, same frame layout as the
WAL — see :mod:`repro.hbase.wal`), followed by a framed JSON **footer**
carrying a first-key block index and one serialized Bloom filter *per
block*, and a fixed 16-byte trailer locating the footer::

    +---------+---------+     +---------+----------+-----------------+
    | block 0 | block 1 | ... | block N | footer   | trailer         |
    | frame   | frame   |     | frame   | frame    | u64 off | magic |
    +---------+---------+     +---------+----------+-----------------+

Each cell inside a block payload is ``u32 key_len | key utf-8 | u8 tag
| u32 value_len | value`` with tag 0 marking a tombstone (empty value)
and tag 1 a JSON-encoded value.  A point read loads the footer once,
binary-searches the first-key index to the single candidate block,
consults only that block's Bloom filter, and ``seek``+reads exactly one
frame — through a capacity-bounded LRU :class:`BlockCache` shared
across every table of a cluster.

Corruption anywhere — torn block, torn footer, flipped bit — fails the
frame CRC or the trailer checks and surfaces as a typed
:class:`~repro.hbase.errors.CorruptSSTableError`, never as garbage
bytes returned as data.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable

from ..observability import MetricsRegistry, get_registry
from .bloom import BloomFilter
from .errors import CorruptSSTableError
from .wal import HEADER_SIZE, decode_frame, encode_frame

__all__ = [
    "MAGIC",
    "TRAILER_SIZE",
    "DEFAULT_BLOCK_SIZE",
    "BlockMeta",
    "BlockFile",
    "BlockCache",
    "write_block_file",
    "read_footer",
]

#: File magic in the trailer; bump the suffix on incompatible changes.
MAGIC = b"PSTSSTB1"

#: ``(footer_offset: u64, magic: 8 bytes)`` — fixed-size, always last.
_TRAILER = struct.Struct(">Q8s")
TRAILER_SIZE = _TRAILER.size

_KEY_LEN = struct.Struct(">I")
_TAG_VALUE_LEN = struct.Struct(">BI")

#: Target bytes of encoded cells per block (a block never splits a
#: cell, so one oversized cell makes one oversized block).
DEFAULT_BLOCK_SIZE = 4096

#: Default capacity of a shared :class:`BlockCache`.
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024

FOOTER_VERSION = 1

_TAG_TOMBSTONE = 0
_TAG_VALUE = 1

#: Module-level tombstone sentinel (``repro.hbase.storage`` re-exports
#: it as ``TOMBSTONE``; defined here so the codec has no import cycle).


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOMBSTONE"


TOMBSTONE = _Tombstone()


@dataclass(frozen=True)
class BlockMeta:
    """Footer index entry for one cell block."""

    first_key: str
    last_key: str
    offset: int
    length: int
    count: int


# ----------------------------------------------------------------------
# Cell codec
# ----------------------------------------------------------------------
def _encode_cell(key: str, value: Any, value_encoder) -> bytes:
    key_bytes = key.encode("utf-8")
    if value is TOMBSTONE:
        tag, payload = _TAG_TOMBSTONE, b""
    else:
        if value_encoder is not None:
            value = value_encoder(value)
        tag = _TAG_VALUE
        payload = json.dumps(value, separators=(",", ":")).encode("utf-8")
    return b"".join(
        (
            _KEY_LEN.pack(len(key_bytes)),
            key_bytes,
            _TAG_VALUE_LEN.pack(tag, len(payload)),
            payload,
        )
    )


def _decode_cells(
    data: bytes, value_decoder, context: str
) -> tuple[tuple[str, ...], tuple[Any, ...]]:
    """Parse one block payload; every malformation is typed."""
    keys: list[str] = []
    values: list[Any] = []
    offset = 0
    total = len(data)
    try:
        while offset < total:
            (key_len,) = _KEY_LEN.unpack_from(data, offset)
            offset += _KEY_LEN.size
            if offset + key_len > total:
                raise ValueError("short key bytes")
            key = data[offset : offset + key_len].decode("utf-8")
            offset += key_len
            tag, value_len = _TAG_VALUE_LEN.unpack_from(data, offset)
            offset += _TAG_VALUE_LEN.size
            raw = data[offset : offset + value_len]
            if len(raw) != value_len:
                raise ValueError("short value bytes")
            offset += value_len
            if tag == _TAG_TOMBSTONE:
                values.append(TOMBSTONE)
            elif tag == _TAG_VALUE:
                value = json.loads(raw.decode("utf-8"))
                if value_decoder is not None:
                    value = value_decoder(value)
                values.append(value)
            else:
                raise ValueError(f"unknown cell tag {tag}")
            keys.append(key)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise CorruptSSTableError(f"malformed cell in {context}: {exc}") from exc
    return tuple(keys), tuple(values)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def write_block_file(
    handle: BinaryIO,
    keys: tuple[str, ...],
    values: tuple[Any, ...],
    value_encoder: Callable[[Any], Any] | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    bloom_fpr: float = 0.01,
    bloom_seed: int = 0,
    on_block: Callable[[], None] | None = None,
    on_footer: Callable[[], None] | None = None,
) -> tuple[list[BlockMeta], list[BloomFilter]]:
    """Stream one sorted run into *handle* as framed blocks + footer.

    *on_block* / *on_footer* fire after each block frame and after the
    footer frame respectively — the chaos crash points.  The caller owns
    atomicity (write to a tmp file, then ``os.replace``), so a crash at
    either boundary leaves only an ignored partial tmp file behind.

    Returns the block index and the per-block Bloom filters, so a
    freshly flushed table can serve point reads without re-reading its
    own footer.
    """
    metas: list[BlockMeta] = []
    blooms: list[BloomFilter] = []
    offset = 0

    def flush_block(block_keys: list[str], cells: list[bytes]) -> None:
        nonlocal offset
        frame = encode_frame(b"".join(cells))
        handle.write(frame)
        bloom = BloomFilter(
            capacity=max(1, len(block_keys)),
            target_fpr=bloom_fpr,
            seed=bloom_seed,
        )
        for key in block_keys:
            bloom.add(key)
        metas.append(
            BlockMeta(
                first_key=block_keys[0],
                last_key=block_keys[-1],
                offset=offset,
                length=len(frame),
                count=len(block_keys),
            )
        )
        blooms.append(bloom)
        offset += len(frame)
        if on_block is not None:
            on_block()

    block_keys: list[str] = []
    cells: list[bytes] = []
    block_bytes = 0
    for key, value in zip(keys, values):
        cell = _encode_cell(key, value, value_encoder)
        block_keys.append(key)
        cells.append(cell)
        block_bytes += len(cell)
        if block_bytes >= block_size:
            flush_block(block_keys, cells)
            block_keys, cells, block_bytes = [], [], 0
    if block_keys:
        flush_block(block_keys, cells)

    footer = {
        "version": FOOTER_VERSION,
        "num_keys": len(keys),
        "blocks": [
            {
                "first": meta.first_key,
                "last": meta.last_key,
                "offset": meta.offset,
                "length": meta.length,
                "count": meta.count,
                "bloom": bloom.to_dict(),
            }
            for meta, bloom in zip(metas, blooms)
        ],
    }
    footer_frame = encode_frame(
        json.dumps(footer, separators=(",", ":")).encode("utf-8")
    )
    handle.write(footer_frame)
    if on_footer is not None:
        on_footer()
    handle.write(_TRAILER.pack(offset, MAGIC))
    return metas, blooms


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def read_footer(
    path: Path,
) -> tuple[list[BlockMeta], list[BloomFilter], int]:
    """Load a block file's index: trailer → footer frame → metas/blooms.

    Raises:
        CorruptSSTableError: the trailer, footer frame, or footer shape
            is torn or corrupt.  Total over arbitrary bytes.
    """
    name = path.name
    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < TRAILER_SIZE + HEADER_SIZE:
                raise CorruptSSTableError(f"{name}: file too short for a trailer")
            handle.seek(size - TRAILER_SIZE)
            footer_offset, magic = _TRAILER.unpack(handle.read(TRAILER_SIZE))
            if magic != MAGIC:
                raise CorruptSSTableError(f"{name}: bad magic {magic!r}")
            if footer_offset > size - TRAILER_SIZE - HEADER_SIZE:
                raise CorruptSSTableError(
                    f"{name}: footer offset {footer_offset} out of bounds"
                )
            handle.seek(footer_offset)
            footer_bytes = handle.read(size - TRAILER_SIZE - footer_offset)
    except OSError as exc:
        raise CorruptSSTableError(f"{name}: unreadable ({exc})") from exc
    payload, diagnosis = decode_frame(footer_bytes)
    if payload is None:
        raise CorruptSSTableError(f"{name}: footer {diagnosis}")
    try:
        footer = json.loads(payload.decode("utf-8"))
        metas = [
            BlockMeta(
                first_key=entry["first"],
                last_key=entry["last"],
                offset=int(entry["offset"]),
                length=int(entry["length"]),
                count=int(entry["count"]),
            )
            for entry in footer["blocks"]
        ]
        blooms = [
            BloomFilter.from_dict(entry["bloom"]) for entry in footer["blocks"]
        ]
        num_keys = int(footer["num_keys"])
    except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
        raise CorruptSSTableError(f"{name}: malformed footer: {exc}") from exc
    for meta in metas:
        if meta.offset + meta.length > footer_offset:
            raise CorruptSSTableError(
                f"{name}: block at {meta.offset} overruns the footer"
            )
    return metas, blooms, num_keys


class BlockCache:
    """A thread-safe, byte-capacity-bounded LRU cache of decoded blocks.

    One instance is shared across every SSTable of a cluster (all
    region stores), keyed ``(file token, block offset)``.  Capacity is
    charged at each block's on-disk frame length — a stable, cheap
    proxy for its decoded footprint.  ``drop_file`` invalidates every
    block of one file; compaction calls it before deleting or atomically
    replacing an SSTable so a reused path can never alias stale blocks.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.registry = registry
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _counter(self, name: str, description: str):
        return get_registry(self.registry).counter(name, description)

    def get(self, token: str, offset: int) -> Any | None:
        with self._lock:
            entry = self._entries.get((token, offset))
            if entry is not None:
                self._entries.move_to_end((token, offset))
                self.hits += 1
            else:
                self.misses += 1
        if entry is None:
            self._counter(
                "sstable_block_cache_misses_total", "block-cache lookups that missed"
            ).inc()
            return None
        self._counter(
            "sstable_block_cache_hits_total", "block-cache lookups served hot"
        ).inc()
        return entry[0]

    def put(self, token: str, offset: int, value: Any, nbytes: int) -> None:
        evicted = 0
        with self._lock:
            key = (token, offset)
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                __, (___, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                evicted += 1
            gauge_bytes = self._bytes
            self.evictions += evicted
        if evicted:
            self._counter(
                "sstable_block_cache_evictions_total",
                "blocks evicted by the LRU capacity bound",
            ).inc(evicted)
        get_registry(self.registry).gauge(
            "sstable_block_cache_bytes", "bytes currently held by the block cache"
        ).set(float(gauge_bytes))

    def drop_file(self, token: str) -> int:
        """Invalidate every cached block of one file; returns blocks dropped."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == token]
            for key in doomed:
                __, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            gauge_bytes = self._bytes
        if doomed:
            get_registry(self.registry).gauge(
                "sstable_block_cache_bytes",
                "bytes currently held by the block cache",
            ).set(float(gauge_bytes))
        return len(doomed)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }


class BlockFile:
    """Lazy reader over one binary SSTable file.

    The footer (index + per-block Blooms) loads on first demand and is
    the only whole-file-ish read a point read ever pays — and it is
    index-sized, not data-sized.  Individual blocks load through the
    shared :class:`BlockCache` (when one is attached) with CRC
    verification on every miss.
    """

    __slots__ = (
        "path",
        "_value_decoder",
        "_cache",
        "_metas",
        "_blooms",
        "_first_keys",
        "_num_keys",
    )

    def __init__(
        self,
        path: Path,
        value_decoder: Callable[[Any], Any] | None = None,
        cache: BlockCache | None = None,
        metas: list[BlockMeta] | None = None,
        blooms: list[BloomFilter] | None = None,
    ) -> None:
        self.path = Path(path)
        self._value_decoder = value_decoder
        self._cache = cache
        self._metas = metas
        self._blooms = blooms
        self._first_keys: list[str] | None = None
        self._num_keys: int | None = None

    # ------------------------------------------------------------------
    @property
    def token(self) -> str:
        """Cache key namespace for this file."""
        return str(self.path)

    def _ensure_index(self) -> None:
        if self._metas is None or self._blooms is None:
            self._metas, self._blooms, self._num_keys = read_footer(self.path)

    @property
    def metas(self) -> list[BlockMeta]:
        self._ensure_index()
        return self._metas  # type: ignore[return-value]

    @property
    def num_blocks(self) -> int:
        return len(self.metas)

    def bloom(self, index: int) -> BloomFilter:
        self._ensure_index()
        return self._blooms[index]  # type: ignore[index]

    def first_keys(self) -> list[str]:
        if self._first_keys is None:
            self._first_keys = [meta.first_key for meta in self.metas]
        return self._first_keys

    # ------------------------------------------------------------------
    def _read_frame(self, handle: BinaryIO, meta: BlockMeta, index: int):
        handle.seek(meta.offset)
        data = handle.read(meta.length)
        payload, diagnosis = decode_frame(data)
        if payload is None:
            raise CorruptSSTableError(
                f"{self.path.name}: block {index} {diagnosis}"
            )
        return _decode_cells(
            payload, self._value_decoder, f"{self.path.name} block {index}"
        )

    def read_block(self, index: int) -> tuple[tuple[str, ...], tuple[Any, ...]]:
        """One block's ``(keys, values)`` — cache first, then disk + CRC."""
        meta = self.metas[index]
        if self._cache is not None:
            cached = self._cache.get(self.token, meta.offset)
            if cached is not None:
                return cached
        try:
            with open(self.path, "rb") as handle:
                entry = self._read_frame(handle, meta, index)
        except OSError as exc:
            raise CorruptSSTableError(
                f"{self.path.name}: unreadable block {index} ({exc})"
            ) from exc
        if self._cache is not None:
            self._cache.put(self.token, meta.offset, entry, meta.length)
        return entry

    def read_all(self) -> tuple[tuple[str, ...], tuple[Any, ...]]:
        """Every cell in key order (scans, compaction) — one file pass,
        CRC-verified per block, deliberately *not* routed through the
        cache so a full scan cannot evict the point-read working set."""
        keys: list[str] = []
        values: list[Any] = []
        try:
            with open(self.path, "rb") as handle:
                for index, meta in enumerate(self.metas):
                    block_keys, block_values = self._read_frame(
                        handle, meta, index
                    )
                    keys.extend(block_keys)
                    values.extend(block_values)
        except OSError as exc:
            raise CorruptSSTableError(
                f"{self.path.name}: unreadable ({exc})"
            ) from exc
        return tuple(keys), tuple(values)
