"""HTable: the client-side table handle.

Routes puts/gets to the responsible region via the catalog and runs scans
across all of a table's regions in key order, with the filter either pushed
down to the region servers (the PStorM deployment, §5.3) or applied on the
client after shipping every row (the baseline the paper argues against).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from .catalog import MetaCatalog
from .filters import Filter, serialize_filter
from .regionserver import RegionServer

__all__ = ["HTable"]


class HTable:
    """Client handle for one HBase table."""

    def __init__(
        self,
        name: str,
        families: tuple[str, ...],
        catalog: MetaCatalog,
        servers: Mapping[int, RegionServer],
        split_threshold: int,
        on_split: Any,
    ) -> None:
        self.name = name
        self.families = families
        self._catalog = catalog
        self._servers = servers
        self._split_threshold = split_threshold
        self._on_split = on_split

    # ------------------------------------------------------------------
    def put(self, row_key: str, family: str, qualifier: str, value: Any) -> None:
        """Write one cell."""
        region, __ = self._catalog.locate(self.name, row_key)
        region.put(row_key, family, qualifier, value)
        if region.num_rows > self._split_threshold:
            self._on_split(self.name, region)

    def put_row(self, row_key: str, family: str, columns: Mapping[str, Any]) -> None:
        """Write several cells of one row in one family."""
        for qualifier, value in columns.items():
            self.put(row_key, family, qualifier, value)

    def delete_row(self, row_key: str) -> bool:
        region, __ = self._catalog.locate(self.name, row_key)
        return region.delete_row(row_key)

    # ------------------------------------------------------------------
    def get(self, row_key: str) -> dict[str, dict[str, Any]] | None:
        """Latest version of one row, or None."""
        region, __ = self._catalog.locate(self.name, row_key)
        return region.get(row_key)

    def scan(
        self,
        start: str | None = None,
        stop: str | None = None,
        scan_filter: Filter | None = None,
        pushdown: bool = True,
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """Scan the table in row-key order.

        Args:
            scan_filter: optional predicate over rows.
            pushdown: if True (default), the filter is serialized and
                applied by the region servers; if False, every row in range
                is shipped and the filter is applied client-side.
        """
        payload = None
        if scan_filter is not None and pushdown:
            payload = serialize_filter(scan_filter)
        for region, server_id in self._catalog.regions_of(self.name):
            server = self._servers[server_id]
            for row_key, row in server.scan_region(region, start, stop, payload):
                if scan_filter is not None and not pushdown:
                    if not scan_filter.matches(row_key, row):
                        continue
                yield row_key, row

    # ------------------------------------------------------------------
    def num_rows(self) -> int:
        return sum(
            region.num_rows for region, __ in self._catalog.regions_of(self.name)
        )

    def __repr__(self) -> str:
        regions = len(self._catalog.regions_of(self.name))
        return f"HTable({self.name!r}, regions={regions}, rows={self.num_rows()})"
