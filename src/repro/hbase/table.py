"""HTable: the client-side table handle.

Routes puts/gets to the responsible region via the catalog and runs scans
across all of a table's regions in key order, with the filter either pushed
down to the region servers (the PStorM deployment, §5.3) or applied on the
client after shipping every row (the baseline the paper argues against).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from ..observability import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from .catalog import MetaCatalog
from .errors import ServerUnavailableError
from .filters import Filter, serialize_filter
from .regionserver import RegionServer

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = ["HTable"]


class HTable:
    """Client handle for one HBase table.

    Reads (gets and scans) route to a region's *primary* server first
    and fail over, in catalog order, to its read replicas when the
    primary is down (:class:`~repro.hbase.errors.ServerUnavailableError`
    from a chaos crash window) — the HBase timeline-consistent
    read-replica shape.  Writes always route to the primary.
    """

    def __init__(
        self,
        name: str,
        families: tuple[str, ...],
        catalog: MetaCatalog,
        servers: Mapping[int, RegionServer],
        split_threshold: int,
        on_split: Any,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        chaos: "FaultInjector | None" = None,
        on_shrink: Any = None,
    ) -> None:
        self.name = name
        self.families = families
        self._catalog = catalog
        self._servers = servers
        self._split_threshold = split_threshold
        self._on_split = on_split
        #: Merge hook: called after a delete leaves a region undersized
        #: (the cluster decides whether to actually merge).  None = off.
        self._on_shrink = on_shrink
        #: Observability sinks; None falls back to the module defaults.
        self.registry = registry
        self.tracer = tracer
        #: Fault injector (resolved by the owning cluster; None = off).
        self.chaos = chaos

    def _observe_latency(self, op: str, seconds: float) -> None:
        get_registry(self.registry).histogram(
            f"hbase_{op}_seconds",
            f"client-observed {op} latency",
            labels={"table": self.name},
            buckets=LATENCY_BUCKETS,
        ).observe(seconds)

    def _count_replica_fallback(self, op: str) -> None:
        get_registry(self.registry).counter(
            "hbase_replica_read_fallbacks_total",
            "reads that failed over past a dead replica server",
            labels={"op": op},
        ).inc()

    def _count_replica_read(self, op: str) -> None:
        get_registry(self.registry).counter(
            "hbase_replica_reads_total",
            "reads served by a non-primary replica server",
            labels={"op": op},
        ).inc()

    # ------------------------------------------------------------------
    def put(self, row_key: str, family: str, qualifier: str, value: Any) -> None:
        """Write one cell."""
        registry = get_registry(self.registry)
        start = perf_counter() if registry.enabled else 0.0
        region, server_id = self._catalog.locate(self.name, row_key)
        if self.chaos is not None:
            self.chaos.on_operation("put", server_id=server_id)
        region.put(row_key, family, qualifier, value)
        if region.num_rows > self._split_threshold:
            self._on_split(self.name, region)
        if registry.enabled:
            self._observe_latency("put", perf_counter() - start)

    def put_row(self, row_key: str, family: str, columns: Mapping[str, Any]) -> None:
        """Write several cells of one row in one family."""
        for qualifier, value in columns.items():
            self.put(row_key, family, qualifier, value)

    def delete_row(self, row_key: str) -> bool:
        region, __ = self._catalog.locate(self.name, row_key)
        existed = region.delete_row(row_key)
        if existed and self._on_shrink is not None:
            self._on_shrink(self.name, region)
        return existed

    # ------------------------------------------------------------------
    def get(self, row_key: str) -> dict[str, dict[str, Any]] | None:
        """Latest version of one row, or None (replica fallback on a
        dead primary)."""
        registry = get_registry(self.registry)
        start = perf_counter() if registry.enabled else 0.0
        region, server_ids = self._catalog.locate_replicas(self.name, row_key)
        if self.chaos is not None:
            error: ServerUnavailableError | None = None
            for position, server_id in enumerate(server_ids):
                try:
                    self.chaos.on_operation("get", server_id=server_id)
                except ServerUnavailableError as exc:
                    error = exc
                    self._count_replica_fallback("get")
                    continue
                if position:
                    self._count_replica_read("get")
                break
            else:
                assert error is not None
                raise error
        row = region.get(row_key)
        if registry.enabled:
            self._observe_latency("get", perf_counter() - start)
        return row

    def scan(
        self,
        start: str | None = None,
        stop: str | None = None,
        scan_filter: Filter | None = None,
        pushdown: bool = True,
        batch: int | None = None,
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """Scan the table in row-key order.

        Args:
            scan_filter: optional predicate over rows.
            pushdown: if True (default), the filter is serialized and
                applied by the region servers; if False, every row in range
                is shipped and the filter is applied client-side.
            batch: if set, fetch rows from each region server in chunks
                of up to this many rows per round trip (HBase scanner
                caching) instead of one call per row.  Yields the same
                rows in the same order either way.
        """
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        payload = None
        if scan_filter is not None and pushdown:
            payload = serialize_filter(scan_filter)
        shipped = 0
        began = perf_counter() if (registry.enabled or tracer.enabled) else 0.0
        try:
            for region, server_ids in self._catalog.replicas_of(self.name):
                rows = self._region_row_stream(
                    region, server_ids, start, stop, payload, batch
                )
                for row_key, row in rows:
                    if scan_filter is not None and not pushdown:
                        if not scan_filter.matches(row_key, row):
                            continue
                    shipped += 1
                    yield row_key, row
        finally:
            # Generators may be abandoned mid-scan; record on the way out
            # either way so every scan leaves a completed span.
            if registry.enabled or tracer.enabled:
                ended = perf_counter()
                if registry.enabled:
                    self._observe_latency("scan", ended - began)
                tracer.record_span(
                    "hbase.scan",
                    start=began,
                    end=ended,
                    attrs={
                        "table": self.name,
                        "rows": shipped,
                        "pushdown": bool(payload is not None),
                    },
                    clock="wall",
                )

    def _region_row_stream(
        self,
        region: Any,
        server_ids: tuple[int, ...],
        start: str | None,
        stop: str | None,
        payload: Mapping[str, Any] | None,
        batch: int | None,
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """One region's scan rows, failing over to replica servers.

        The chaos consult fires at the head of a region-server scan,
        before any row ships, so a dead server is always detected with
        zero rows yielded — failover restarts the scan on the next
        replica without ever duplicating or dropping a row.
        """
        error: ServerUnavailableError | None = None
        for position, server_id in enumerate(server_ids):
            server = self._servers[server_id]
            if batch is not None:
                rows: Iterator[tuple[str, dict[str, dict[str, Any]]]] = (
                    item
                    for chunk in server.scan_region_batch(
                        region, start, stop, payload, batch=batch
                    )
                    for item in chunk
                )
            else:
                rows = server.scan_region(region, start, stop, payload)
            iterator = iter(rows)
            try:
                first = next(iterator)
            except StopIteration:
                if position:
                    self._count_replica_read("scan")
                return
            except ServerUnavailableError as exc:
                error = exc
                self._count_replica_fallback("scan")
                continue
            if position:
                self._count_replica_read("scan")
            yield first
            yield from iterator
            return
        assert error is not None
        raise error

    # ------------------------------------------------------------------
    def num_rows(self) -> int:
        return sum(
            region.num_rows for region, __ in self._catalog.regions_of(self.name)
        )

    def __repr__(self) -> str:
        regions = len(self._catalog.regions_of(self.name))
        return f"HTable({self.name!r}, regions={regions}, rows={self.num_rows()})"
