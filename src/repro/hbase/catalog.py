"""The -ROOT-/.META.-style catalog: which servers host which key range.

§5.2.2 of the paper contrasts how region entries look in the ``.META.``
table under different data models; this catalog reproduces those entries as
``(table_name, start_key, region_id) -> server_ids`` mappings and provides
the key-range routing clients use to direct gets and scans.

Each region is hosted by an ordered tuple of servers: the first is the
*primary* (all writes route there), the rest are read replicas sharing
the region's store — the HBase read-replica shape, where secondaries
serve reads over the same HFiles.  Clients that hit a dead primary fall
back to the next replica in order (see :meth:`HTable.get`/``scan``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

from .region import Region

__all__ = ["CatalogEntry", "MetaCatalog"]


def _as_server_ids(server_ids: int | Sequence[int]) -> tuple[int, ...]:
    if isinstance(server_ids, int):
        return (server_ids,)
    ids = tuple(int(server_id) for server_id in server_ids)
    if not ids:
        raise ValueError("a region needs at least one hosting server")
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate replica servers: {ids}")
    return ids


@dataclass(frozen=True)
class CatalogEntry:
    """One .META. row: a region's identity and its hosting servers."""

    table_name: str
    start_key: str
    region_id: int
    server_id: int
    replica_ids: tuple[int, ...] = field(default=())

    @property
    def meta_key(self) -> str:
        """The .META. row key, ``<table>,<start_key>,<region_id>``."""
        return f"{self.table_name},{self.start_key},{self.region_id}"

    @property
    def server_ids(self) -> tuple[int, ...]:
        """Primary first, then the read replicas."""
        return (self.server_id,) + self.replica_ids


class MetaCatalog:
    """Routing table from (table, row key) to (region, servers)."""

    def __init__(self) -> None:
        self._entries: dict[str, list[tuple[str, int, tuple[int, ...]]]] = {}
        self._regions: dict[int, Region] = {}
        self._next_region_id = 0

    # ------------------------------------------------------------------
    def register(self, region: Region, server_ids: int | Sequence[int]) -> int:
        """Register a region with its hosting servers (primary first);
        returns the region id."""
        hosts = _as_server_ids(server_ids)
        region_id = self._next_region_id
        self._next_region_id += 1
        self._regions[region_id] = region
        entries = self._entries.setdefault(region.table_name, [])
        bisect.insort(entries, (region.start_key, region_id, hosts))
        return region_id

    def unregister(self, region_id: int) -> None:
        region = self._regions.pop(region_id)
        entries = self._entries[region.table_name]
        self._entries[region.table_name] = [
            entry for entry in entries if entry[1] != region_id
        ]

    def reassign(self, region_id: int, server_ids: int | Sequence[int]) -> None:
        """Move a registered region to a new host set (rebalancing)."""
        hosts = _as_server_ids(server_ids)
        region = self._regions[region_id]
        entries = self._entries[region.table_name]
        for position, (start, entry_id, __) in enumerate(entries):
            if entry_id == region_id:
                entries[position] = (start, region_id, hosts)
                return
        raise KeyError(f"region id {region_id} is not registered")

    def drop_table(self, table_name: str) -> None:
        for __, region_id, __ in list(self._entries.get(table_name, [])):
            self._regions.pop(region_id, None)
        self._entries.pop(table_name, None)

    # ------------------------------------------------------------------
    def _entry_for(self, table_name: str, row_key: str) -> tuple[str, int, tuple[int, ...]]:
        entries = self._entries.get(table_name)
        if not entries:
            raise KeyError(f"no regions registered for table {table_name!r}")
        starts = [start for start, __, __ in entries]
        index = bisect.bisect_right(starts, row_key) - 1
        index = max(0, index)
        return entries[index]

    def locate(self, table_name: str, row_key: str) -> tuple[Region, int]:
        """Region and *primary* server responsible for *row_key*."""
        __, region_id, hosts = self._entry_for(table_name, row_key)
        return self._regions[region_id], hosts[0]

    def locate_replicas(
        self, table_name: str, row_key: str
    ) -> tuple[Region, tuple[int, ...]]:
        """Region and its full host set (primary first) for *row_key*."""
        __, region_id, hosts = self._entry_for(table_name, row_key)
        return self._regions[region_id], hosts

    def find(self, region: Region) -> tuple[int, int]:
        """``(region_id, primary_server_id)`` of a registered region."""
        region_id, hosts = self.find_replicas(region)
        return region_id, hosts[0]

    def find_replicas(self, region: Region) -> tuple[int, tuple[int, ...]]:
        """``(region_id, server_ids)`` of a registered region object."""
        for __, region_id, hosts in self._entries.get(region.table_name, []):
            if self._regions[region_id] is region:
                return region_id, hosts
        raise KeyError(f"region {region!r} is not registered")

    def regions_of(self, table_name: str) -> list[tuple[Region, int]]:
        """All (region, primary server) pairs of a table, in key order."""
        return [
            (self._regions[region_id], hosts[0])
            for __, region_id, hosts in self._entries.get(table_name, [])
        ]

    def replicas_of(self, table_name: str) -> list[tuple[Region, tuple[int, ...]]]:
        """All (region, server_ids) pairs of a table, in key order."""
        return [
            (self._regions[region_id], hosts)
            for __, region_id, hosts in self._entries.get(table_name, [])
        ]

    def adjacent(self, region: Region) -> tuple[Region | None, Region | None]:
        """The key-order neighbors of a registered region (None at edges)."""
        entries = self._entries.get(region.table_name, [])
        for position, (__, region_id, __) in enumerate(entries):
            if self._regions[region_id] is region:
                left = (
                    self._regions[entries[position - 1][1]] if position > 0 else None
                )
                right = (
                    self._regions[entries[position + 1][1]]
                    if position + 1 < len(entries)
                    else None
                )
                return left, right
        raise KeyError(f"region {region!r} is not registered")

    def meta_rows(self, table_name: str | None = None) -> list[CatalogEntry]:
        """The .META. rows, for inspection (as shown in §5.2.2)."""
        rows = []
        tables = [table_name] if table_name else sorted(self._entries)
        for name in tables:
            for start, region_id, hosts in self._entries.get(name, []):
                rows.append(
                    CatalogEntry(name, start, region_id, hosts[0], hosts[1:])
                )
        return rows
