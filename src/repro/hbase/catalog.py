"""The -ROOT-/.META.-style catalog: which server hosts which key range.

§5.2.2 of the paper contrasts how region entries look in the ``.META.``
table under different data models; this catalog reproduces those entries as
``(table_name, start_key, region_id) -> server_id`` mappings and provides
the key-range routing clients use to direct gets and scans.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from .region import Region

__all__ = ["CatalogEntry", "MetaCatalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """One .META. row: a region's identity and its hosting server."""

    table_name: str
    start_key: str
    region_id: int
    server_id: int

    @property
    def meta_key(self) -> str:
        """The .META. row key, ``<table>,<start_key>,<region_id>``."""
        return f"{self.table_name},{self.start_key},{self.region_id}"


class MetaCatalog:
    """Routing table from (table, row key) to (region, server)."""

    def __init__(self) -> None:
        self._entries: dict[str, list[tuple[str, int, int]]] = {}
        self._regions: dict[int, Region] = {}
        self._next_region_id = 0

    # ------------------------------------------------------------------
    def register(self, region: Region, server_id: int) -> int:
        """Register a region with its hosting server; returns region id."""
        region_id = self._next_region_id
        self._next_region_id += 1
        self._regions[region_id] = region
        entries = self._entries.setdefault(region.table_name, [])
        bisect.insort(entries, (region.start_key, region_id, server_id))
        return region_id

    def unregister(self, region_id: int) -> None:
        region = self._regions.pop(region_id)
        entries = self._entries[region.table_name]
        self._entries[region.table_name] = [
            entry for entry in entries if entry[1] != region_id
        ]

    def drop_table(self, table_name: str) -> None:
        for __, region_id, __ in list(self._entries.get(table_name, [])):
            self._regions.pop(region_id, None)
        self._entries.pop(table_name, None)

    # ------------------------------------------------------------------
    def locate(self, table_name: str, row_key: str) -> tuple[Region, int]:
        """Region and server responsible for *row_key* in *table_name*."""
        entries = self._entries.get(table_name)
        if not entries:
            raise KeyError(f"no regions registered for table {table_name!r}")
        starts = [start for start, __, __ in entries]
        index = bisect.bisect_right(starts, row_key) - 1
        index = max(0, index)
        __, region_id, server_id = entries[index]
        return self._regions[region_id], server_id

    def find(self, region: Region) -> tuple[int, int]:
        """``(region_id, server_id)`` of a registered region object."""
        for __, region_id, server_id in self._entries.get(region.table_name, []):
            if self._regions[region_id] is region:
                return region_id, server_id
        raise KeyError(f"region {region!r} is not registered")

    def regions_of(self, table_name: str) -> list[tuple[Region, int]]:
        """All (region, server) pairs of a table, in key order."""
        return [
            (self._regions[region_id], server_id)
            for __, region_id, server_id in self._entries.get(table_name, [])
        ]

    def meta_rows(self, table_name: str | None = None) -> list[CatalogEntry]:
        """The .META. rows, for inspection (as shown in §5.2.2)."""
        rows = []
        tables = [table_name] if table_name else sorted(self._entries)
        for name in tables:
            for start, region_id, server_id in self._entries.get(name, []):
                rows.append(CatalogEntry(name, start, region_id, server_id))
        return rows
