"""The LSM write path: WAL, memstore, HFiles, and compaction.

Chapter 5 picks HBase for scalable profile storage; this module models
the machinery behind that promise at observation fidelity: every write
appends to a write-ahead log and lands in an in-memory **memstore**;
when the memstore exceeds its flush threshold it becomes an immutable
sorted **HFile**; reads merge the memstore with every HFile (newest
wins), so read amplification grows with the file count until a
**compaction** merges HFiles back down.  The metrics exposed here —
files per store, read amplification, WAL length — let tests and benches
verify the behaviour instead of asserting it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["WalEntry", "HFile", "LsmStore"]

_sequence = itertools.count(1)


@dataclass(frozen=True)
class WalEntry:
    """One durable log record (replayed on recovery)."""

    sequence: int
    key: str
    value: Any


@dataclass(frozen=True)
class HFile:
    """An immutable, sorted key->value file flushed from the memstore."""

    file_id: int
    keys: tuple[str, ...]
    values: tuple[Any, ...]

    @property
    def num_keys(self) -> int:
        return len(self.keys)

    def get(self, key: str) -> tuple[bool, Any]:
        """(found, value) via binary search."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return True, self.values[index]
        return False, None


@dataclass
class LsmStore:
    """One column-family store with the HBase write path.

    Attributes:
        flush_threshold: memstore entries that trigger a flush.
        compaction_threshold: HFile count that triggers a full compaction.
    """

    flush_threshold: int = 64
    compaction_threshold: int = 4
    memstore: dict[str, Any] = field(default_factory=dict)
    hfiles: list[HFile] = field(default_factory=list)
    wal: list[WalEntry] = field(default_factory=list)
    flushes: int = 0
    compactions: int = 0
    _file_ids: itertools.count = field(default_factory=lambda: itertools.count(1))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """WAL append, memstore insert, flush when full."""
        self.wal.append(WalEntry(next(_sequence), key, value))
        self.memstore[key] = value
        if len(self.memstore) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Freeze the memstore into a new HFile; truncate the WAL."""
        if not self.memstore:
            return
        keys = tuple(sorted(self.memstore))
        values = tuple(self.memstore[k] for k in keys)
        self.hfiles.append(HFile(next(self._file_ids), keys, values))
        self.memstore = {}
        self.wal = []
        self.flushes += 1
        if len(self.hfiles) >= self.compaction_threshold:
            self.compact()

    def compact(self) -> None:
        """Merge every HFile into one (newest version of each key wins)."""
        if len(self.hfiles) <= 1:
            return
        merged: dict[str, Any] = {}
        for hfile in self.hfiles:  # oldest first; later files overwrite
            for key, value in zip(hfile.keys, hfile.values):
                merged[key] = value
        keys = tuple(sorted(merged))
        values = tuple(merged[k] for k in keys)
        self.hfiles = [HFile(next(self._file_ids), keys, values)]
        self.compactions += 1

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any, int]:
        """(found, value, files probed) — memstore first, then HFiles
        newest-to-oldest; ``files probed`` is the read amplification."""
        if key in self.memstore:
            return True, self.memstore[key], 0
        probed = 0
        for hfile in reversed(self.hfiles):
            probed += 1
            found, value = hfile.get(key)
            if found:
                return True, value, probed
        return False, None, probed

    def scan(self) -> Iterator[tuple[str, Any]]:
        """Merged view of memstore + HFiles, in key order."""
        merged: dict[str, Any] = {}
        for hfile in self.hfiles:
            for key, value in zip(hfile.keys, hfile.values):
                merged[key] = value
        merged.update(self.memstore)
        for key in sorted(merged):
            yield key, merged[key]

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> "LsmStore":
        """Crash recovery: a fresh store from HFiles + WAL replay.

        The memstore is volatile; everything in it since the last flush
        is reconstructed from the write-ahead log.
        """
        restored = LsmStore(
            flush_threshold=self.flush_threshold,
            compaction_threshold=self.compaction_threshold,
        )
        restored.hfiles = list(self.hfiles)
        for entry in self.wal:
            restored.memstore[entry.key] = entry.value
            restored.wal.append(entry)
        return restored

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return sum(1 for __ in self.scan())

    def read_amplification(self) -> int:
        """Worst-case files probed by a point read."""
        return len(self.hfiles)
