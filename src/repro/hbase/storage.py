"""The LSM write path: WAL, memstore, SSTables, leveled compaction.

Chapter 5 picks HBase for scalable profile storage; this module models
the machinery behind that promise at observation fidelity: every write
appends to a write-ahead log and lands in an in-memory **memstore**;
when the memstore exceeds its flush threshold it becomes an immutable
sorted **SSTable** in level 0; when L0 accumulates
``compaction_threshold`` tables a **leveled compaction** merges them
into the (single, non-overlapping) sorted run of the next level,
cascading by a per-level capacity fanout.  Each SSTable carries a
:class:`~repro.hbase.bloom.BloomFilter`, so point reads probe only the
tables that *might* hold the key — ``bloom_skipped_blocks_total``
counts the ones skipped, and ``read_amplification()`` stays the honest
worst case (the table count).

Durability is opt-in: with ``data_dir`` set the WAL lives in a real
file (length-prefixed, CRC-checked frames — see :mod:`repro.hbase.wal`),
flushes and compactions write SSTable files and atomically commit a
``manifest.json`` (tmp + ``os.replace``), and constructing a store on
an existing directory *recovers*: the manifest is loaded (SSTables
lazily — a cold store reads only key ranges and the footer-sized block
index), the WAL tail is replayed with torn/corrupt tails detected,
truncated, and surfaced as a typed diagnosis.  Deletes write
tombstones, which leveled compaction drops once they reach the deepest
level.

The durable file format is binary and block-sharded (see
:mod:`repro.hbase.sstable`): an ``sst_*.bin`` file holds
length+CRC32-framed cell blocks of ~``block_size`` encoded bytes each,
plus a footer with a first-key block index and one Bloom filter per
block.  A cold point read binary-searches the index to the single
candidate block, consults only that block's Bloom, and ``seek``+reads
exactly one frame through a cluster-shared LRU :class:`BlockCache` —
instead of parsing the whole table.  Legacy one-JSON-blob ``sst_*.json``
tables (manifest entries without a ``format`` field) stay readable
transparently, and any compaction rewrites them into the current
format (``compact(force=True)``, surfaced as ``repro compact``,
migrates even a single remaining table).

Without ``data_dir`` the store behaves exactly like the pre-durability
substrate (no files, no chaos consults), so every in-memory test and
seeded chaos schedule is unchanged.
"""

from __future__ import annotations

import bisect
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, NamedTuple

from ..observability import MetricsRegistry, get_registry
from .bloom import BloomFilter
from .sstable import (
    DEFAULT_BLOCK_SIZE,
    TOMBSTONE,
    BlockCache,
    BlockFile,
    write_block_file,
)
from .wal import WalRecord, WriteAheadLog

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = [
    "WalEntry",
    "HFile",
    "SSTable",
    "LsmStore",
    "TOMBSTONE",
    "ProbeResult",
    "BlockCache",
]

#: Compat alias: the WAL record type used to be defined here.
WalEntry = WalRecord

MANIFEST_NAME = "manifest.json"
WAL_NAME = "wal.log"
#: v1 manifests predate block sharding: their entries carry no
#: ``format`` field and are read as legacy one-JSON-blob tables.
MANIFEST_VERSION = 2


class ProbeResult(NamedTuple):
    """Outcome of one table's point read, with block-level accounting.

    ``consulted`` counts Bloom filters asked, ``probed`` the blocks
    actually searched, ``skipped`` the blocks a Bloom ruled out — all
    *blocks*, not tables, so a multi-block binary table reports the
    same way a single-block one does.
    """

    found: bool
    value: Any
    consulted: int
    probed: int
    skipped: int
    false_positive: bool


#: A probe pruned by the block index alone (no Bloom consulted).
_ABSENT = ProbeResult(False, None, 0, 0, 0, False)


class SSTable:
    """An immutable, sorted key->value run flushed from the memstore.

    Key ranges always live in memory (they come from the manifest); the
    key/value arrays may be loaded lazily from disk on first touch, so
    a freshly restored store pays only for the blocks its reads
    actually visit.  A binary table additionally carries a
    :class:`~repro.hbase.sstable.BlockFile`, whose footer index and
    per-block Bloom filters let :meth:`probe` read exactly one block;
    a legacy JSON table keeps a table-level ``bloom`` from the manifest
    and loads whole (its file *is* one block).
    """

    __slots__ = (
        "file_id",
        "level",
        "min_key",
        "max_key",
        "bloom",
        "storage_format",
        "_num_keys",
        "_keys",
        "_values",
        "_loader",
        "_block_file",
    )

    def __init__(
        self,
        file_id: int,
        keys: tuple[str, ...] | None,
        values: tuple[Any, ...] | None,
        bloom: BloomFilter | None = None,
        level: int = 0,
        min_key: str | None = None,
        max_key: str | None = None,
        num_keys: int | None = None,
        loader: Callable[[], tuple[tuple[str, ...], tuple[Any, ...]]] | None = None,
        block_file: BlockFile | None = None,
        storage_format: str = "memory",
    ) -> None:
        self.file_id = file_id
        self.level = level
        self.bloom = bloom
        self.storage_format = storage_format
        self._keys = keys
        self._values = values
        self._loader = loader
        self._block_file = block_file
        if keys is not None:
            self.min_key = keys[0] if keys else ""
            self.max_key = keys[-1] if keys else ""
            self._num_keys = len(keys)
        else:
            self.min_key = min_key if min_key is not None else ""
            self.max_key = max_key if max_key is not None else ""
            self._num_keys = int(num_keys or 0)

    @classmethod
    def from_mapping(
        cls,
        file_id: int,
        entries: dict[str, Any],
        level: int = 0,
        bloom_fpr: float = 0.01,
        bloom_seed: int = 0,
    ) -> "SSTable":
        keys = tuple(sorted(entries))
        values = tuple(entries[k] for k in keys)
        bloom = BloomFilter(
            capacity=max(1, len(keys)), target_fpr=bloom_fpr, seed=bloom_seed
        )
        for key in keys:
            bloom.add(key)
        return cls(file_id, keys, values, bloom, level=level)

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._keys is None:
            if self._block_file is not None:
                self._keys, self._values = self._block_file.read_all()
            elif self._loader is not None:
                self._keys, self._values = self._loader()
            else:
                raise RuntimeError(
                    f"SSTable {self.file_id} has neither data nor a loader"
                )

    def attach_block_file(self, block_file: BlockFile) -> None:
        """Adopt the durable block layout a flush/compaction just wrote.

        The table keeps its loaded arrays (hot reads stay in-memory);
        the block file is what a *restored* table will read lazily, and
        it makes ``num_blocks`` and cache invalidation exact now.
        """
        self._block_file = block_file
        self.storage_format = "binary"

    @property
    def loaded(self) -> bool:
        return self._keys is not None

    @property
    def keys(self) -> tuple[str, ...]:
        self._ensure_loaded()
        return self._keys  # type: ignore[return-value]

    @property
    def values(self) -> tuple[Any, ...]:
        self._ensure_loaded()
        return self._values  # type: ignore[return-value]

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def num_blocks(self) -> int:
        """Durable cell blocks in this table (1 for legacy/in-memory)."""
        if self._block_file is not None:
            return self._block_file.num_blocks
        return 1 if self._num_keys else 0

    @property
    def block_file(self) -> BlockFile | None:
        return self._block_file

    def key_in_range(self, key: str) -> bool:
        return self.min_key <= key <= self.max_key

    def get(self, key: str) -> tuple[bool, Any]:
        """(found, value) via binary search; loads the table if needed."""
        keys = self.keys
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return True, self.values[index]
        return False, None

    def probe(self, key: str) -> ProbeResult:
        """Point-read with block-level accounting; never loads more
        than one block.

        A loaded table (memstore-fresh, or already scanned) answers
        from memory with single-block semantics — one Bloom consult
        when it has a table filter, one block searched.  A cold binary
        table binary-searches the footer's first-key index down to at
        most one candidate block, consults only *that block's* Bloom,
        and reads exactly that block (through the shared cache).
        """
        if self._keys is None and self._block_file is not None:
            return self._probe_blocks(key)
        if self.bloom is not None and not self.bloom.might_contain(key):
            return ProbeResult(False, None, 1, 0, 1, False)
        consulted = 1 if self.bloom is not None else 0
        found, value = self.get(key)
        return ProbeResult(
            found, value, consulted, 1, 0, (not found) and consulted > 0
        )

    def _probe_blocks(self, key: str) -> ProbeResult:
        block_file = self._block_file
        assert block_file is not None
        first_keys = block_file.first_keys()
        if not first_keys:
            return _ABSENT
        index = bisect.bisect_right(first_keys, key) - 1
        if index < 0:
            return _ABSENT
        if key > block_file.metas[index].last_key:
            return _ABSENT  # falls in the gap between two blocks
        if not block_file.bloom(index).might_contain(key):
            return ProbeResult(False, None, 1, 0, 1, False)
        keys, values = block_file.read_block(index)
        position = bisect.bisect_left(keys, key)
        if position < len(keys) and keys[position] == key:
            return ProbeResult(True, values[position], 1, 1, 0, False)
        return ProbeResult(False, None, 1, 1, 0, True)

    def items(self) -> Iterator[tuple[str, Any]]:
        self._ensure_loaded()
        return zip(self._keys, self._values)  # type: ignore[arg-type]


#: Compat alias: flushed runs used to be called HFiles.
HFile = SSTable


class LsmStore:
    """One column-family store with the HBase write path.

    Args:
        flush_threshold: memstore entries that trigger a flush.
        compaction_threshold: L0 table count that triggers a leveled
            compaction into L1.
        data_dir: directory for WAL + SSTable files + manifest; ``None``
            (default) keeps the store purely in memory.  Opening a store
            on a directory that already holds a manifest *recovers* it.
        level_fanout: per-level capacity multiplier (level *n* holds up
            to ``flush_threshold * fanout**n`` entries before cascading).
        bloom_fpr / bloom_seed: Bloom filter configuration (per block in
            the binary format, per table for legacy JSON).
        group_commit: WAL records buffered per fsync (durable mode).
        sstable_format: ``"binary"`` (default, block-sharded) or
            ``"json"`` (the legacy one-blob-per-table format, kept for
            migration tests and benchmarks).  Existing tables of the
            *other* format stay readable either way; new flushes and
            compactions write this one.
        block_size: target bytes of encoded cells per binary block.
        block_cache: a :class:`~repro.hbase.sstable.BlockCache` to read
            binary blocks through — pass one shared instance across
            region stores (the cluster does); ``None`` in durable mode
            creates a private cache.
        value_encoder / value_decoder: hooks mapping stored values to
            JSON-able payloads and back (regions store cell maps).
        chaos: fault injector consulted at durability boundaries
            (WAL append, flush, per-block/footer SSTable writes,
            compaction) — only in durable mode, so in-memory chaos
            schedules are byte-identical to before.
    """

    def __init__(
        self,
        flush_threshold: int = 64,
        compaction_threshold: int = 4,
        data_dir: Path | str | None = None,
        level_fanout: int = 4,
        bloom_fpr: float = 0.01,
        bloom_seed: int = 0,
        group_commit: int = 1,
        sstable_format: str = "binary",
        block_size: int = DEFAULT_BLOCK_SIZE,
        block_cache: BlockCache | None = None,
        value_encoder: Callable[[Any], Any] | None = None,
        value_decoder: Callable[[Any], Any] | None = None,
        chaos: "FaultInjector | None" = None,
        registry: MetricsRegistry | None = None,
        clock: Any = None,
    ) -> None:
        if sstable_format not in ("binary", "json"):
            raise ValueError(f"unknown sstable_format {sstable_format!r}")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.flush_threshold = flush_threshold
        self.compaction_threshold = compaction_threshold
        self.level_fanout = level_fanout
        self.bloom_fpr = bloom_fpr
        self.bloom_seed = bloom_seed
        self.registry = registry
        self.chaos = chaos
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.sstable_format = sstable_format
        self.block_size = block_size
        if block_cache is None and self.data_dir is not None:
            block_cache = BlockCache(registry=registry)
        self.block_cache = block_cache
        self._value_encoder = value_encoder
        self._value_decoder = value_decoder

        self.memstore: dict[str, Any] = {}
        #: ``levels[0]`` is the flush list (overlapping, newest last);
        #: deeper levels hold at most one non-overlapping sorted run.
        self.levels: list[list[SSTable]] = [[]]
        #: In-memory mirror of the un-flushed WAL tail (compat surface).
        self.wal: list[WalRecord] = []
        self.flushes = 0
        self.compactions = 0
        self._next_file_id = 1
        self._next_seq = 1
        self._version = 0
        self._merged_cache: tuple[int, list[str], dict[str, Any]] | None = None
        #: Live (non-tombstoned) keys; None = unknown after a restore,
        #: rebuilt lazily on first ``num_keys``/scan demand.
        self._live: set[str] | None = set()
        self._deferred = 0
        self._flush_pending = False
        #: Diagnosis of a torn/corrupt WAL tail found during recovery.
        self.recovered_tail_error: str | None = None

        replay: list[WalRecord] = []
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            replay = self._attach()
        if clock is None:
            from ..chaos.retry import VirtualClock

            clock = chaos.clock if chaos is not None else VirtualClock()
        self.clock = clock
        self.wal_log = WriteAheadLog(
            path=(self.data_dir / WAL_NAME) if self.data_dir is not None else None,
            group_commit=group_commit,
            clock=self.clock,
            registry=registry,
            value_encoder=self._encode_value,
            value_decoder=self._decode_value,
        )
        for record in replay:
            self.wal_log.records.append(record)
            self._apply(record)

    # ------------------------------------------------------------------
    # Value codec (identity unless the owner stores non-JSON values)
    # ------------------------------------------------------------------
    def _encode_value(self, value: Any) -> Any:
        return value if self._value_encoder is None else self._value_encoder(value)

    def _decode_value(self, payload: Any) -> Any:
        return payload if self._value_decoder is None else self._value_decoder(payload)

    # ------------------------------------------------------------------
    # Durable attach / manifest
    # ------------------------------------------------------------------
    def _sst_path(self, file_id: int, fmt: str | None = None) -> Path:
        assert self.data_dir is not None
        suffix = "bin" if (fmt or self.sstable_format) == "binary" else "json"
        return self.data_dir / f"sst_{file_id:06d}.{suffix}"

    def _sst_loader(self, file_id: int):
        def load() -> tuple[tuple[str, ...], tuple[Any, ...]]:
            payload = json.loads(self._sst_path(file_id, "json").read_text())
            keys = tuple(payload["keys"])
            values = tuple(
                TOMBSTONE if tag == 0 else self._decode_value(raw)
                for tag, raw in payload["values"]
            )
            return keys, values

        return load

    def _attach(self) -> list[WalRecord]:
        """Recover levels + counters from the manifest (when one exists)
        and replay the WAL tail, tolerating torn/corrupt trailing bytes.
        A directory with a WAL but no manifest (crash before the first
        flush) recovers from the log alone."""
        assert self.data_dir is not None
        manifest_path = self.data_dir / MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            self._next_file_id = int(manifest["next_file_id"])
            self._next_seq = int(manifest["next_seq"])
            self.flushes = int(manifest["flushes"])
            self.compactions = int(manifest["compactions"])
            self.levels = []
            for level, tables in enumerate(manifest["levels"]):
                run = [
                    self._attach_table(level, entry) for entry in tables
                ]
                self.levels.append(run)
            if not self.levels:
                self.levels = [[]]
            self._live = None  # rebuilt lazily from a full merge when needed
        records, tail_error = WriteAheadLog.load(
            self.data_dir / WAL_NAME,
            repair=True,
            registry=self.registry,
            value_decoder=self._decode_value,
        )
        self.recovered_tail_error = tail_error
        if records:
            self._next_seq = max(self._next_seq, records[-1].sequence + 1)
        return records

    def _attach_table(self, level: int, entry: dict[str, Any]) -> SSTable:
        """One manifest entry → a lazy SSTable of the recorded format.

        Entries without a ``format`` field are legacy (manifest v1)
        JSON tables: they carry a serialized table-level Bloom.  Binary
        entries carry none — their per-block Blooms live in the file
        footer, loaded on first probe.
        """
        file_id = int(entry["file_id"])
        fmt = entry.get("format", "json")
        common = dict(
            level=level,
            min_key=entry["min_key"],
            max_key=entry["max_key"],
            num_keys=int(entry["num_keys"]),
        )
        if fmt == "binary":
            return SSTable(
                file_id,
                None,
                None,
                block_file=BlockFile(
                    self._sst_path(file_id, "binary"),
                    value_decoder=self._decode_value,
                    cache=self.block_cache,
                ),
                storage_format="binary",
                **common,
            )
        return SSTable(
            file_id,
            None,
            None,
            bloom=BloomFilter.from_dict(entry["bloom"]),
            loader=self._sst_loader(file_id),
            storage_format="json",
            **common,
        )

    def _commit_manifest(self) -> None:
        assert self.data_dir is not None
        levels = []
        for run in self.levels:
            entries = []
            for table in run:
                entry: dict[str, Any] = {
                    "file_id": table.file_id,
                    "num_keys": table.num_keys,
                    "min_key": table.min_key,
                    "max_key": table.max_key,
                    "format": table.storage_format,
                }
                if table.storage_format != "binary":
                    # Binary tables keep their (per-block) Blooms in the
                    # file footer; duplicating a table-level filter here
                    # would bloat the manifest for no read-path gain.
                    assert table.bloom is not None
                    entry["bloom"] = table.bloom.to_dict()
                entries.append(entry)
            levels.append(entries)
        payload = {
            "version": MANIFEST_VERSION,
            "next_file_id": self._next_file_id,
            "next_seq": self._next_seq,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "levels": levels,
        }
        tmp = self.data_dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.data_dir / MANIFEST_NAME)

    def _write_sstable_file(self, table: SSTable) -> None:
        if self.sstable_format == "binary":
            self._write_binary_sstable(table)
        else:
            self._write_json_sstable(table)

    def _write_binary_sstable(self, table: SSTable) -> None:
        """Stream the table into an ``sst_*.bin`` block file.

        Chaos fires at every block boundary (``sst-block``) and after
        the footer (``sst-footer``) — both land *before* the atomic
        ``os.replace``, so a crash at either leaves only an ignored tmp
        file and recovery replays the WAL exactly as a pre-flush crash
        would.
        """
        assert self.data_dir is not None
        path = self._sst_path(table.file_id, "binary")
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            metas, blooms = write_block_file(
                handle,
                table.keys,
                table.values,
                value_encoder=self._encode_value,
                block_size=self.block_size,
                bloom_fpr=self.bloom_fpr,
                bloom_seed=self.bloom_seed,
                on_block=lambda: self._chaos_point("sst-block"),
                on_footer=lambda: self._chaos_point("sst-footer"),
            )
        if self.block_cache is not None:
            # A reused file_id (or a re-written path) must never serve
            # blocks cached from the file it replaces.
            self.block_cache.drop_file(str(path))
        os.replace(tmp, path)
        table.attach_block_file(
            BlockFile(
                path,
                value_decoder=self._decode_value,
                cache=self.block_cache,
                metas=metas,
                blooms=blooms,
            )
        )

    def _write_json_sstable(self, table: SSTable) -> None:
        assert self.data_dir is not None
        payload = {
            "file_id": table.file_id,
            "level": table.level,
            "keys": list(table.keys),
            "values": [
                [0, None] if value is TOMBSTONE else [1, self._encode_value(value)]
                for value in table.values
            ],
        }
        path = self._sst_path(table.file_id, "json")
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        table.storage_format = "json"

    def _remove_sstable_file(self, table: SSTable) -> None:
        """Delete a replaced table's file and evict its cached blocks."""
        path = self._sst_path(table.file_id, table.storage_format)
        if self.block_cache is not None and table.storage_format == "binary":
            self.block_cache.drop_file(str(path))
        path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Chaos / batching
    # ------------------------------------------------------------------
    def _chaos_point(self, op: str) -> None:
        """Consult the injector at a durability boundary (durable only,
        so in-memory operation schedules stay byte-identical)."""
        if self.chaos is not None and self.data_dir is not None:
            self.chaos.on_operation(op)

    @property
    def in_deferred_scope(self) -> bool:
        """Whether a :meth:`deferred` batch scope is currently open.

        Region maintenance (splits/merges) checks this: rewriting the
        region mid-batch would tear one logical write across a topology
        swap, so the cluster queues the operation until the batch's
        fsync point instead.
        """
        return self._deferred > 0

    @contextmanager
    def deferred(self):
        """Batch scope: WAL syncs and flushes are deferred to scope exit,
        so a multi-row logical write hits its fsync point *once* — either
        every record of the batch is durable or none is."""
        self._deferred += 1
        self.wal_log.auto_sync = False
        completed = False
        try:
            yield self
            completed = True
        finally:
            self._deferred -= 1
            if self._deferred == 0:
                self.wal_log.auto_sync = True
                if completed:
                    self.wal_log.sync()
                    if self._flush_pending:
                        self._flush_pending = False
                        self.flush()
                else:
                    # The batch died before its fsync point: a real kill
                    # loses the whole unsynced buffer, so the simulated
                    # one must too — never half a logical write.
                    self._flush_pending = False
                    self.wal_log.discard_pending()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """WAL append, memstore insert, flush when full."""
        self._write("put", key, value)

    def delete(self, key: str) -> None:
        """Tombstone a key (dropped at the deepest level by compaction)."""
        self._write("delete", key, None)

    def _write(self, op: str, key: str, value: Any) -> None:
        self._chaos_point("lsm-put")
        record = WalRecord(self._next_seq, op, key, value)
        self._next_seq += 1
        self.wal_log.append(record)
        self._apply(record)
        if len(self.memstore) >= self.flush_threshold:
            if self._deferred:
                self._flush_pending = True
            else:
                self.flush()

    def _apply(self, record: WalRecord) -> None:
        """Mutate the memstore with one (already logged) record."""
        self.wal.append(record)
        if record.op == "put":
            self.memstore[record.key] = record.value
            if self._live is not None:
                self._live.add(record.key)
        else:
            self.memstore[record.key] = TOMBSTONE
            if self._live is not None:
                self._live.discard(record.key)
        self._version += 1

    def flush(self) -> None:
        """Freeze the memstore into a new L0 SSTable; truncate the WAL."""
        if not self.memstore:
            return
        self.wal_log.sync()  # an SSTable must never outrun its log
        table = SSTable.from_mapping(
            self._next_file_id,
            self.memstore,
            level=0,
            bloom_fpr=self.bloom_fpr,
            bloom_seed=self.bloom_seed,
        )
        self._next_file_id += 1
        if self.data_dir is not None:
            self._write_sstable_file(table)
            self._chaos_point("lsm-flush")
        self.levels[0].append(table)
        self.memstore = {}
        self.wal = []
        self.flushes += 1
        get_registry(self.registry).counter(
            "lsm_flushes_total", "memstore flushes into L0 SSTables"
        ).inc()
        if self.data_dir is not None:
            self._commit_manifest()
            self.wal_log.reset()
        if len(self.levels[0]) >= self.compaction_threshold:
            self._compact_level(0)
            self._cascade()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _level_capacity(self, level: int) -> int:
        return self.flush_threshold * (self.level_fanout ** level)

    def _level_entries(self, level: int) -> int:
        if level >= len(self.levels):
            return 0
        return sum(table.num_keys for table in self.levels[level])

    def _merge_runs(
        self, older: list[SSTable], newer: list[SSTable], drop_tombstones: bool
    ) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for table in older + newer:  # oldest first; later tables overwrite
            for key, value in table.items():
                merged[key] = value
        if drop_tombstones:
            merged = {k: v for k, v in merged.items() if v is not TOMBSTONE}
        return merged

    def _deepest_populated(self) -> int:
        for level in range(len(self.levels) - 1, -1, -1):
            if self.levels[level]:
                return level
        return 0

    def _compact_level(self, level: int) -> None:
        """Merge level *level* into the sorted run of level ``level+1``."""
        target = level + 1
        while len(self.levels) <= target:
            self.levels.append([])
        source = self.levels[level]
        sink = self.levels[target]
        if not source:
            return
        # Tombstones can be dropped once nothing older can resurrect
        # the key — i.e. the target is the deepest populated level.
        drop = self._deepest_populated() <= target
        merged = self._merge_runs(sink, source, drop_tombstones=drop)
        replaced = source + sink
        if merged:
            table = SSTable.from_mapping(
                self._next_file_id,
                merged,
                level=target,
                bloom_fpr=self.bloom_fpr,
                bloom_seed=self.bloom_seed,
            )
            self._next_file_id += 1
            new_run = [table]
        else:
            new_run = []
        if self.data_dir is not None:
            for table in new_run:
                self._write_sstable_file(table)
            self._chaos_point("lsm-compact")
        self.levels[level] = []
        self.levels[target] = new_run
        self.compactions += 1
        get_registry(self.registry).counter(
            "lsm_compactions_total", "leveled SSTable compactions"
        ).inc()
        if self.data_dir is not None:
            self._commit_manifest()
            for old in replaced:
                self._remove_sstable_file(old)

    def _cascade(self) -> None:
        """Push over-capacity runs deeper; the bottom level is unbounded."""
        level = 1
        while level < self._deepest_populated():
            if (
                self.levels[level]
                and self._level_entries(level) > self._level_capacity(level)
            ):
                self._compact_level(level)
            level += 1

    def compact(self, force: bool = False) -> None:
        """Force a full compaction: merge every table into one deep run.

        With ``force=True`` even a single remaining table is rewritten
        — the migration path: rewriting always emits the store's
        current ``sstable_format``, so a forced compaction converts
        legacy JSON tables to binary blocks (or back, for a
        ``sstable_format="json"`` store).
        """
        tables = [table for run in self.levels for table in run]
        if not tables:
            return
        if len(tables) <= 1 and not force:
            return
        merged = self._merge_runs([], self._tables_oldest_first(), True)
        replaced = tables
        deepest = max(1, len(self.levels) - 1)
        new_run: list[SSTable] = []
        if merged:
            table = SSTable.from_mapping(
                self._next_file_id,
                merged,
                level=deepest,
                bloom_fpr=self.bloom_fpr,
                bloom_seed=self.bloom_seed,
            )
            self._next_file_id += 1
            new_run = [table]
        if self.data_dir is not None:
            for table in new_run:
                self._write_sstable_file(table)
            self._chaos_point("lsm-compact")
        self.levels = [[] for __ in range(deepest)] + [new_run]
        self.compactions += 1
        get_registry(self.registry).counter(
            "lsm_compactions_total", "leveled SSTable compactions"
        ).inc()
        if self.data_dir is not None:
            self._commit_manifest()
            for old in replaced:
                self._remove_sstable_file(old)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    @property
    def hfiles(self) -> list[SSTable]:
        """Every SSTable, oldest-precedence first (deepest level first,
        L0 in flush order last) — the order a merge iterates."""
        ordered: list[SSTable] = []
        for level in range(len(self.levels) - 1, 0, -1):
            ordered.extend(self.levels[level])
        ordered.extend(self.levels[0])
        return ordered

    def _tables_oldest_first(self) -> list[SSTable]:
        return self.hfiles

    def get(self, key: str) -> tuple[bool, Any, int]:
        """(found, value, blocks probed) — memstore first, then SSTables
        newest-to-oldest.  Tables whose key range, block index, or Bloom
        filter rules the key out are skipped without loading a block;
        ``probed`` counts only the blocks actually searched.  All
        counters are block-granular: a cold multi-block table consults
        one per-block Bloom and reads at most one block."""
        if key in self.memstore:
            value = self.memstore[key]
            if value is TOMBSTONE:
                return False, None, 0
            return True, value, 0
        probed = 0
        registry = get_registry(self.registry)
        for table in reversed(self.hfiles):
            if not table.key_in_range(key):
                continue
            result = table.probe(key)
            if result.consulted:
                registry.counter(
                    "bloom_probes_total", "SSTable block Bloom filters consulted"
                ).inc(result.consulted)
            if result.skipped:
                registry.counter(
                    "bloom_skipped_blocks_total",
                    "SSTable blocks skipped by a Bloom filter",
                ).inc(result.skipped)
            if result.probed:
                registry.counter(
                    "bloom_probed_blocks_total",
                    "SSTable blocks actually searched by point reads",
                ).inc(result.probed)
                probed += result.probed
            if result.found:
                if result.value is TOMBSTONE:
                    return False, None, probed
                return True, result.value, probed
            if result.false_positive:
                registry.counter(
                    "bloom_false_positives_total",
                    "Bloom filter passes that found no key in the block",
                ).inc()
        return False, None, probed

    def _merged(self) -> tuple[list[str], dict[str, Any]]:
        """(sorted live keys, live key->value map), cached per version."""
        cache = self._merged_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        merged: dict[str, Any] = {}
        for table in self._tables_oldest_first():
            for key, value in table.items():
                merged[key] = value
        merged.update(self.memstore)
        live = {k: v for k, v in merged.items() if v is not TOMBSTONE}
        keys = sorted(live)
        self._merged_cache = (self._version, keys, live)
        if self._live is None:
            self._live = set(keys)
        return keys, live

    def sorted_view(self) -> tuple[list[str], dict[str, Any]]:
        """Sorted live keys plus the merged map (for range scans)."""
        return self._merged()

    def scan(self) -> Iterator[tuple[str, Any]]:
        """Merged view of memstore + SSTables, in key order."""
        keys, live = self._merged()
        for key in keys:
            yield key, live[key]

    # ------------------------------------------------------------------
    # Recovery (in-memory semantics, kept for compatibility)
    # ------------------------------------------------------------------
    def recover(self) -> "LsmStore":
        """Crash recovery of an in-memory store: a fresh store from
        SSTables + WAL replay (the memstore is volatile).  Durable
        stores recover for real — construct ``LsmStore(data_dir=...)``
        on the surviving directory instead."""
        restored = LsmStore(
            flush_threshold=self.flush_threshold,
            compaction_threshold=self.compaction_threshold,
            level_fanout=self.level_fanout,
            bloom_fpr=self.bloom_fpr,
            bloom_seed=self.bloom_seed,
            value_encoder=self._value_encoder,
            value_decoder=self._value_decoder,
            registry=self.registry,
        )
        restored.levels = [list(run) for run in self.levels]
        restored._next_file_id = self._next_file_id
        restored.flushes = self.flushes
        restored.compactions = self.compactions
        restored._live = None
        for record in self.wal:
            restored._next_seq = record.sequence + 1
            restored.wal_log.records.append(record)
            restored._apply(record)
        return restored

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        if self._live is None:
            self._merged()  # rebuilds the live set as a side effect
        return len(self._live)  # type: ignore[arg-type]

    def read_amplification(self) -> int:
        """Worst-case blocks probed by a point read (the table count)."""
        return sum(len(run) for run in self.levels)

    def close(self) -> None:
        """Graceful shutdown: a buffered group-commit tail is synced
        (unlike a crash, which loses it)."""
        self.wal_log.sync()
        self.wal_log.close()

    def __repr__(self) -> str:
        shape = "/".join(str(len(run)) for run in self.levels)
        where = str(self.data_dir) if self.data_dir is not None else "memory"
        return f"LsmStore(levels={shape}, memstore={len(self.memstore)}, at={where})"
