"""HBase substrate: a column-family store with regions and filter pushdown.

An in-memory reproduction of the HBase machinery PStorM's profile store
relies on (§5): row-key-sorted regions hosted by region servers, a
.META.-style catalog, immutable-at-creation column families, scans, and
serializable filters applied server-side.
"""

from .catalog import CatalogEntry, MetaCatalog
from .cluster import HBaseCluster
from .bloom import BloomFilter
from .errors import (
    RETRYABLE_ERRORS,
    CorruptSSTableError,
    CorruptWalError,
    HBaseError,
    ServerUnavailableError,
    SimulatedCrashError,
    TableExistsError,
    TableNotFoundError,
    TransientError,
    UnknownColumnFamilyError,
    UnknownFilterError,
)
from .filters import (
    ColumnValueFilter,
    Filter,
    FilterList,
    PrefixFilter,
    RowRangeFilter,
    deserialize_filter,
    register_filter,
    serialize_filter,
)
from .region import Cell, Region, decode_cells, encode_cells
from .regionserver import RegionServer, ServerMetrics
from .sstable import BlockCache, BlockFile, BlockMeta
from .storage import TOMBSTONE, HFile, LsmStore, ProbeResult, SSTable, WalEntry
from .table import HTable
from .wal import WalRecord, WriteAheadLog, decode_frame, decode_frames, encode_frame

__all__ = [
    "CatalogEntry",
    "MetaCatalog",
    "HBaseCluster",
    "HBaseError",
    "TableExistsError",
    "TableNotFoundError",
    "UnknownColumnFamilyError",
    "UnknownFilterError",
    "TransientError",
    "ServerUnavailableError",
    "CorruptWalError",
    "CorruptSSTableError",
    "SimulatedCrashError",
    "RETRYABLE_ERRORS",
    "ColumnValueFilter",
    "Filter",
    "FilterList",
    "PrefixFilter",
    "RowRangeFilter",
    "deserialize_filter",
    "register_filter",
    "serialize_filter",
    "Cell",
    "Region",
    "encode_cells",
    "decode_cells",
    "RegionServer",
    "ServerMetrics",
    "BloomFilter",
    "BlockCache",
    "BlockFile",
    "BlockMeta",
    "HFile",
    "SSTable",
    "ProbeResult",
    "TOMBSTONE",
    "LsmStore",
    "WalEntry",
    "WalRecord",
    "WriteAheadLog",
    "encode_frame",
    "decode_frame",
    "decode_frames",
    "HTable",
]
