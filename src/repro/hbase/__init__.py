"""HBase substrate: a column-family store with regions and filter pushdown.

An in-memory reproduction of the HBase machinery PStorM's profile store
relies on (§5): row-key-sorted regions hosted by region servers, a
.META.-style catalog, immutable-at-creation column families, scans, and
serializable filters applied server-side.
"""

from .catalog import CatalogEntry, MetaCatalog
from .cluster import HBaseCluster
from .errors import (
    RETRYABLE_ERRORS,
    HBaseError,
    ServerUnavailableError,
    TableExistsError,
    TableNotFoundError,
    TransientError,
    UnknownColumnFamilyError,
    UnknownFilterError,
)
from .filters import (
    ColumnValueFilter,
    Filter,
    FilterList,
    PrefixFilter,
    RowRangeFilter,
    deserialize_filter,
    register_filter,
    serialize_filter,
)
from .region import Cell, Region
from .regionserver import RegionServer, ServerMetrics
from .storage import HFile, LsmStore, WalEntry
from .table import HTable

__all__ = [
    "CatalogEntry",
    "MetaCatalog",
    "HBaseCluster",
    "HBaseError",
    "TableExistsError",
    "TableNotFoundError",
    "UnknownColumnFamilyError",
    "UnknownFilterError",
    "TransientError",
    "ServerUnavailableError",
    "RETRYABLE_ERRORS",
    "ColumnValueFilter",
    "Filter",
    "FilterList",
    "PrefixFilter",
    "RowRangeFilter",
    "deserialize_filter",
    "register_filter",
    "serialize_filter",
    "Cell",
    "Region",
    "RegionServer",
    "ServerMetrics",
    "HFile",
    "LsmStore",
    "WalEntry",
    "HTable",
]
