"""HBaseCluster: table lifecycle, region assignment, splits, durability.

The paper's deployment runs one HMaster and one HRegionServer on the
Hadoop master node; a cluster here defaults to a single region server but
supports several, with round-robin assignment of new regions, automatic
median splits once a region exceeds the split threshold, automatic merges
of undersized adjacent siblings (``merge_threshold``), an explicit
:meth:`rebalance` that evens region placement across servers, and N-way
region replication (``replication``): every region is hosted by a primary
plus ``replication - 1`` read replicas on distinct servers, all sharing
the region's store — the HBase read-replica shape — so reads fail over
when a chaos crash window takes the primary down (see
:class:`~repro.hbase.table.HTable`).

Every topology change (create, split, merge, rebalance, drop) bumps
:attr:`topology_version`, a monotone counter sharded consumers (the
per-region match-index partitions) compare against to detect that their
partition map went stale.

With ``data_dir`` set, the cluster is durable: every region's LSM store
gets its own directory (WAL + SSTables + manifest) under
``data_dir/regions/``, and a ``cluster.json`` document — rewritten
atomically on every topology change and on :meth:`flush_all` — records
the table → region → directory mapping.  Constructing a cluster on a
directory that already holds ``cluster.json`` *restores* it: regions
re-attach to their directories (SSTables load lazily, WAL tails replay)
and orphaned region directories a crash left behind are swept, so
recovery cost is manifest-sized, not store-sized.  All region stores of
a durable cluster read binary SSTable blocks through one shared LRU
:class:`~repro.hbase.sstable.BlockCache`, and the cluster's
``sstable_format``/``block_size`` persist in ``cluster.json`` so a
reopen keeps writing the format it wrote before.  Splits and merges
commit crash-safely: the successor regions are written durably, then
``cluster.json`` swaps to them atomically, then the predecessor
directories are removed — a crash between any two steps recovers either
the old topology or the new one, never half of each.  A split or merge
triggered *inside* a deferred write batch (one logical multi-row write)
is queued and committed at the batch's fsync point instead, so batch
atomicity survives region maintenance.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..observability import MetricsRegistry, Tracer, get_registry
from .catalog import MetaCatalog
from .errors import TableExistsError, TableNotFoundError
from .region import Region, decode_cells, encode_cells
from .regionserver import RegionServer
from .sstable import DEFAULT_BLOCK_SIZE, DEFAULT_CACHE_BYTES, BlockCache
from .storage import LsmStore
from .table import HTable

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = ["HBaseCluster"]

DEFAULT_SPLIT_THRESHOLD = 1024
CLUSTER_META_NAME = "cluster.json"


class HBaseCluster:
    """An HBase deployment: region servers, a catalog, and tables.

    Args:
        num_region_servers: how many region servers host regions.
        split_threshold: rows after which a region splits at its median.
        replication: hosts per region (primary + read replicas on
            distinct servers); clamped to the server count.
        merge_threshold: when set, a region that shrinks below this many
            rows after a delete merges with its smaller adjacent sibling
            (provided the result stays under the split threshold).
        sstable_format: durable SSTable format every region store
            writes — ``"binary"`` (block-sharded, default) or ``"json"``
            (legacy).  Persisted in ``cluster.json``, so a reopened
            cluster keeps writing what it wrote before regardless of
            the constructor default.
        block_size: target bytes per binary cell block (persisted too).
        block_cache_bytes: capacity of the one :class:`BlockCache`
            shared by every region store of a durable cluster.
    """

    def __init__(
        self,
        num_region_servers: int = 1,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        chaos: "FaultInjector | None" = None,
        data_dir: Path | str | None = None,
        group_commit: int = 1,
        replication: int = 1,
        merge_threshold: int | None = None,
        sstable_format: str = "binary",
        block_size: int = DEFAULT_BLOCK_SIZE,
        block_cache_bytes: int | None = None,
    ) -> None:
        if num_region_servers < 1:
            raise ValueError("need at least one region server")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        if merge_threshold is not None and merge_threshold < 1:
            raise ValueError("merge_threshold must be positive (or None)")
        if sstable_format not in ("binary", "json"):
            raise ValueError(f"unknown sstable_format {sstable_format!r}")
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.group_commit = group_commit
        meta = None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            meta_path = self.data_dir / CLUSTER_META_NAME
            if meta_path.exists():
                meta = json.loads(meta_path.read_text())
                num_region_servers = int(meta["num_region_servers"])
                split_threshold = int(meta["split_threshold"])
                replication = int(meta.get("replication", 1))
                restored_merge = meta.get("merge_threshold")
                merge_threshold = (
                    None if restored_merge is None else int(restored_merge)
                )
                sstable_format = str(meta.get("sstable_format", sstable_format))
                block_size = int(meta.get("block_size", block_size))
        self.sstable_format = sstable_format
        self.block_size = block_size
        #: One LRU block cache shared by every region store (durable
        #: clusters only; in-memory stores never read blocks).
        self.block_cache: BlockCache | None = (
            BlockCache(
                capacity_bytes=(
                    DEFAULT_CACHE_BYTES
                    if block_cache_bytes is None
                    else block_cache_bytes
                ),
                registry=registry,
            )
            if self.data_dir is not None
            else None
        )
        #: Observability sinks; None falls back to the module defaults.
        #: Handed to every region server and table of this cluster.
        self.registry = registry
        self.tracer = tracer
        if chaos is None:
            # Lazy import breaks the repro.chaos <-> repro.hbase cycle;
            # resolving once at construction keeps the no-chaos fast
            # path at a single attribute check per operation.
            from ..chaos import default_injector

            chaos = default_injector()
        #: Fault injector consulted at operation boundaries (None = off).
        self.chaos = chaos
        self.servers: dict[int, RegionServer] = {
            i: RegionServer(i, registry=registry, chaos=chaos)
            for i in range(num_region_servers)
        }
        self.catalog = MetaCatalog()
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold
        #: Effective hosts per region (never more than there are servers).
        self.replication = min(replication, num_region_servers)
        #: Monotone topology counter: bumped on create/split/merge/
        #: rebalance/drop so partitioned consumers can detect staleness.
        self.topology_version = 0
        self._tables: dict[str, HTable] = {}
        self._assign_cursor = 0
        self._next_region_dir = 0
        #: Splits/merges that fired inside a deferred write batch; they
        #: commit at :meth:`run_pending_maintenance` (the batch's fsync
        #: point) so one logical write never tears across a topology swap.
        self._pending_maintenance: list[tuple[str, str, Region]] = []
        if meta is not None:
            self._restore_from_meta(meta)

    # ------------------------------------------------------------------
    # Durable region stores and the cluster meta document
    # ------------------------------------------------------------------
    def _open_region_store(self, path: Path) -> LsmStore:
        return LsmStore(
            data_dir=path,
            group_commit=self.group_commit,
            sstable_format=self.sstable_format,
            block_size=self.block_size,
            block_cache=self.block_cache,
            value_encoder=encode_cells,
            value_decoder=decode_cells,
            chaos=self.chaos,
            registry=self.registry,
        )

    def _region_store(self) -> LsmStore | None:
        """A backing store for one new region: durable when the cluster
        is, in-memory (``None`` → Region default) otherwise."""
        if self.data_dir is None:
            return None
        path = self.data_dir / "regions" / f"r{self._next_region_dir:05d}"
        self._next_region_dir += 1
        if path.exists():
            # A crash between creating successor directories and the
            # meta swap can leave this slot occupied by an orphan; a
            # fresh region must never resurrect its stale rows.
            shutil.rmtree(path, ignore_errors=True)
        return self._open_region_store(path)

    def _write_meta(self) -> None:
        """Atomically rewrite ``cluster.json`` from the live topology."""
        if self.data_dir is None:
            return
        tables = {}
        for name, table in self._tables.items():
            regions = []
            for region, server_ids in self.catalog.replicas_of(name):
                store_dir = region.store.data_dir
                assert store_dir is not None
                regions.append(
                    {
                        "start": region.start_key,
                        "end": region.end_key,
                        "dir": str(store_dir.relative_to(self.data_dir)),
                        "server_id": server_ids[0],
                        "server_ids": list(server_ids),
                    }
                )
            tables[name] = {"families": list(table.families), "regions": regions}
        payload = {
            "version": 2,
            "num_region_servers": len(self.servers),
            "split_threshold": self.split_threshold,
            "merge_threshold": self.merge_threshold,
            "replication": self.replication,
            "sstable_format": self.sstable_format,
            "block_size": self.block_size,
            "next_region_dir": self._next_region_dir,
            "tables": tables,
        }
        tmp = self.data_dir / (CLUSTER_META_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, self.data_dir / CLUSTER_META_NAME)

    def _restore_from_meta(self, meta: dict) -> None:
        assert self.data_dir is not None
        self._next_region_dir = int(meta.get("next_region_dir", 0))
        referenced: set[Path] = set()
        for name, spec in meta["tables"].items():
            families = tuple(spec["families"])
            for region_spec in spec["regions"]:
                region_dir = self.data_dir / region_spec["dir"]
                referenced.add(region_dir.resolve())
                store = self._open_region_store(region_dir)
                region = Region(
                    name,
                    families,
                    start_key=region_spec["start"],
                    end_key=region_spec["end"],
                    store=store,
                )
                hosts = self._restored_hosts(region_spec)
                for server_id in hosts:
                    self.servers[server_id].assign(region)
                self.catalog.register(region, hosts)
            self._tables[name] = self._make_table(name, families)
        self._sweep_orphan_dirs(referenced)

    def _restored_hosts(self, region_spec: dict) -> tuple[int, ...]:
        """The host set of one restored region, deduped modulo the
        (possibly shrunk) server count."""
        raw = region_spec.get("server_ids") or [region_spec["server_id"]]
        hosts: list[int] = []
        for server_id in raw:
            server_id = int(server_id) % len(self.servers)
            if server_id not in hosts:
                hosts.append(server_id)
        return tuple(hosts)

    def _sweep_orphan_dirs(self, referenced: set[Path]) -> None:
        """Remove region directories ``cluster.json`` does not name.

        A crash between writing successor region stores (split/merge)
        and the atomic meta swap leaves their directories on disk while
        the meta still names the predecessors.  The predecessors are
        authoritative; the orphans must go, or a later region creation
        could reuse the directory slot and resurrect stale rows.
        """
        assert self.data_dir is not None
        regions_root = self.data_dir / "regions"
        if not regions_root.is_dir():
            return
        for child in sorted(regions_root.iterdir()):
            if child.is_dir() and child.resolve() not in referenced:
                shutil.rmtree(child, ignore_errors=True)

    def flush_all(self) -> int:
        """Flush every region's memstore and refresh the meta document.

        After this, every acked write is in an SSTable and the WALs are
        empty — the store half of a snapshot.  Returns regions flushed.
        """
        flushed = 0
        seen: set[int] = set()
        for server in self.servers.values():
            # Replicated regions are hosted (and therefore visited) by
            # several servers but must flush exactly once.
            for region in server.regions:
                if id(region) in seen:
                    continue
                seen.add(id(region))
                before = region.store.flushes
                region.store.flush()
                if region.store.flushes != before:
                    flushed += 1
        self._write_meta()
        get_registry(self.registry).counter(
            "snapshot_writes_total", "cluster-wide flush-and-checkpoint passes"
        ).inc()
        return flushed

    def compact_all(self, force: bool = True) -> int:
        """Flush then fully compact every region's store.

        With ``force=True`` (the default) single-table stores are
        rewritten too, so every surviving SSTable ends up in the
        cluster's current ``sstable_format`` — the legacy-JSON →
        binary-block migration in one call.  Returns regions compacted.
        """
        compacted = 0
        seen: set[int] = set()
        for server in self.servers.values():
            for region in server.regions:
                if id(region) in seen:
                    continue
                seen.add(id(region))
                region.store.flush()
                region.store.compact(force=force)
                compacted += 1
        self._write_meta()
        return compacted

    # ------------------------------------------------------------------
    # Region placement
    # ------------------------------------------------------------------
    def _next_server(self) -> RegionServer:
        server = self.servers[self._assign_cursor % len(self.servers)]
        self._assign_cursor += 1
        return server

    def _assign_servers(self) -> tuple[int, ...]:
        """Host set for one new region: a round-robin primary plus the
        next ``replication - 1`` distinct servers in ring order."""
        primary = self._next_server().server_id
        hosts = [primary]
        for offset in range(1, self.replication):
            hosts.append((primary + offset) % len(self.servers))
        return tuple(hosts)

    def _host_region(self, region: Region) -> tuple[int, ...]:
        hosts = self._assign_servers()
        for server_id in hosts:
            self.servers[server_id].assign(region)
        self.catalog.register(region, hosts)
        return hosts

    def _unhost_region(self, region: Region) -> None:
        region_id, hosts = self.catalog.find_replicas(region)
        self.catalog.unregister(region_id)
        for server_id in hosts:
            self.servers[server_id].unassign(region)

    def _bump_topology(self) -> None:
        self.topology_version += 1
        get_registry(self.registry).gauge(
            "hbase_regions", "regions currently registered across all tables"
        ).set(float(sum(len(self.catalog.regions_of(name)) for name in self._tables)))

    def _chaos_point(self, op: str, region: Region) -> None:
        if self.chaos is not None:
            __, hosts = self.catalog.find_replicas(region)
            self.chaos.on_operation(op, server_id=hosts[0])

    # ------------------------------------------------------------------
    # Splits and merges
    # ------------------------------------------------------------------
    def _handle_split(self, table_name: str, region: Region) -> None:
        """Split an oversized region (deferred to batch commit when the
        region store is mid-logical-write)."""
        if region.store.in_deferred_scope:
            self._queue_maintenance("split", table_name, region)
            return
        self._split_now(table_name, region)

    def _split_now(self, table_name: str, region: Region) -> None:
        # The consult precedes any mutation: an injected fault aborts
        # the split with catalog and stores untouched.
        self._chaos_point("split", region)
        make_store = self._region_store if self.data_dir is not None else None
        left, right = region.split(make_store=make_store)
        self._unhost_region(region)
        self._host_region(left)
        self._host_region(right)
        if self.data_dir is not None:
            # Make the daughters durable, commit the topology swap
            # atomically, and only then retire the parent's directory.
            left.store.flush()
            right.store.flush()
            self._write_meta()
            region.store.close()
            parent_dir = region.store.data_dir
            if parent_dir is not None:
                shutil.rmtree(parent_dir, ignore_errors=True)
        self._bump_topology()
        get_registry(self.registry).counter(
            "hbase_region_splits_total", "region median splits committed"
        ).inc()

    def _handle_shrink(self, table_name: str, region: Region) -> None:
        """Merge an undersized region into its smaller adjacent sibling
        (deferred to batch commit when mid-logical-write)."""
        if self.merge_threshold is None:
            return
        if region.store.in_deferred_scope:
            self._queue_maintenance("merge", table_name, region)
            return
        self._maybe_merge(table_name, region)

    def _maybe_merge(self, table_name: str, region: Region) -> None:
        if region.num_rows >= self.merge_threshold:
            return
        left, right = self.catalog.adjacent(region)
        sibling: Region | None = None
        for neighbor in (left, right):
            if neighbor is None:
                continue
            if region.num_rows + neighbor.num_rows > self.split_threshold:
                continue  # would immediately re-split: leave it alone
            if sibling is None or neighbor.num_rows < sibling.num_rows:
                sibling = neighbor
        if sibling is None:
            return
        first, second = (
            (sibling, region) if sibling.start_key < region.start_key
            else (region, sibling)
        )
        self.merge_regions(table_name, first, second)

    def merge_regions(
        self, table_name: str, left: Region, right: Region
    ) -> Region:
        """Merge two adjacent registered regions; returns the merged one.

        Commit order mirrors :meth:`_split_now`: the merged region is
        written durably first, then ``cluster.json`` swaps to it, then
        the parents' directories are retired — a crash in between
        recovers either both parents or the merged region.
        """
        self._chaos_point("merge", left)
        make_store = self._region_store if self.data_dir is not None else None
        merged = Region.merge(left, right, make_store=make_store)
        self._unhost_region(left)
        self._unhost_region(right)
        self._host_region(merged)
        if self.data_dir is not None:
            merged.store.flush()
            self._write_meta()
            for parent in (left, right):
                parent.store.close()
                parent_dir = parent.store.data_dir
                if parent_dir is not None:
                    shutil.rmtree(parent_dir, ignore_errors=True)
        self._bump_topology()
        get_registry(self.registry).counter(
            "hbase_region_merges_total", "adjacent-region merges committed"
        ).inc()
        return merged

    def _queue_maintenance(self, kind: str, table_name: str, region: Region) -> None:
        entry = (kind, table_name, region)
        if entry not in self._pending_maintenance:
            self._pending_maintenance.append(entry)

    def run_pending_maintenance(self) -> int:
        """Commit splits/merges queued during a deferred write batch.

        Called by batch owners (e.g. the profile store) after their
        fsync point.  Conditions are re-checked: a region may have
        shrunk back under the split threshold, been split already, or
        been unregistered.  Returns operations committed.
        """
        committed = 0
        while self._pending_maintenance:
            kind, table_name, region = self._pending_maintenance.pop(0)
            try:
                self.catalog.find_replicas(region)
            except KeyError:
                continue  # already replaced by an earlier queued op
            if kind == "split":
                if region.num_rows > self.split_threshold:
                    self._split_now(table_name, region)
                    committed += 1
            else:
                before = self.topology_version
                self._maybe_merge(table_name, region)
                committed += int(self.topology_version != before)
        return committed

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def rebalance(self) -> int:
        """Even region placement across servers; returns regions moved.

        Deterministic: regions are enumerated per table in key order and
        re-homed round-robin (region *i* of a table gets primary ``i %
        num_servers`` plus the next ``replication - 1`` servers in ring
        order), so two clusters with the same topology always rebalance
        identically.  Bumps the topology version only when something
        actually moved.
        """
        moves = 0
        for name in sorted(self._tables):
            placements = self.catalog.replicas_of(name)
            if placements and self.chaos is not None:
                self.chaos.on_operation(
                    "rebalance", server_id=placements[0][1][0]
                )
            for position, (region, hosts) in enumerate(placements):
                primary = position % len(self.servers)
                target = tuple(
                    (primary + offset) % len(self.servers)
                    for offset in range(self.replication)
                )
                if target == hosts:
                    continue
                region_id, __ = self.catalog.find_replicas(region)
                for server_id in hosts:
                    self.servers[server_id].unassign(region)
                for server_id in target:
                    self.servers[server_id].assign(region)
                self.catalog.reassign(region_id, target)
                moves += 1
        if moves:
            self._write_meta()
            self._bump_topology()
            get_registry(self.registry).counter(
                "hbase_region_moves_total", "regions moved by rebalancing"
            ).inc(moves)
        return moves

    # ------------------------------------------------------------------
    def _make_table(self, name: str, families: tuple[str, ...]) -> HTable:
        return HTable(
            name,
            families,
            self.catalog,
            self.servers,
            self.split_threshold,
            self._handle_split,
            registry=self.registry,
            tracer=self.tracer,
            chaos=self.chaos,
            on_shrink=self._handle_shrink,
        )

    def create_table(self, name: str, families: tuple[str, ...]) -> HTable:
        """Create a table with its (immutable) column families."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        if not families:
            raise ValueError("a table needs at least one column family")
        region = Region(name, tuple(families), store=self._region_store())
        self._host_region(region)
        table = self._make_table(name, tuple(families))
        self._tables[name] = table
        self._write_meta()
        self._bump_topology()
        return table

    def table(self, name: str) -> HTable:
        table = self._tables.get(name)
        if table is None:
            raise TableNotFoundError(f"table {name!r} does not exist")
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"table {name!r} does not exist")
        for region, server_ids in self.catalog.replicas_of(name):
            for server_id in server_ids:
                self.servers[server_id].unassign(region)
            if self.data_dir is not None and region.store.data_dir is not None:
                region.store.close()
                shutil.rmtree(region.store.data_dir, ignore_errors=True)
        self.catalog.drop_table(name)
        del self._tables[name]
        self._write_meta()
        self._bump_topology()

    def tables(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    # ------------------------------------------------------------------
    def total_store_objects(self) -> int:
        """Cluster-wide in-memory Store object count (§5.2.2 metric)."""
        return sum(server.num_store_objects() for server in self.servers.values())

    def reset_metrics(self) -> None:
        for server in self.servers.values():
            server.metrics.reset()
