"""HBaseCluster: table lifecycle, region assignment, splits, durability.

The paper's deployment runs one HMaster and one HRegionServer on the
Hadoop master node; a cluster here defaults to a single region server but
supports several, with round-robin assignment of new regions and automatic
median splits once a region exceeds the split threshold — enough to observe
the data-locality and load arguments of §5.

With ``data_dir`` set, the cluster is durable: every region's LSM store
gets its own directory (WAL + SSTables + manifest) under
``data_dir/regions/``, and a ``cluster.json`` document — rewritten
atomically on every topology change (table create, split) and on
:meth:`flush_all` — records the table → region → directory mapping.
Constructing a cluster on a directory that already holds ``cluster.json``
*restores* it: regions re-attach to their directories (SSTables load
lazily, WAL tails replay), so recovery cost is manifest-sized, not
store-sized.  Splits commit crash-safely: daughters are written
durably, then ``cluster.json`` swaps to them atomically, then the parent
directory is removed — a crash between any two steps recovers either
the parent or the daughters, never half of each.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..observability import MetricsRegistry, Tracer, get_registry
from .catalog import MetaCatalog
from .errors import TableExistsError, TableNotFoundError
from .region import Region, decode_cells, encode_cells
from .regionserver import RegionServer
from .storage import LsmStore
from .table import HTable

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = ["HBaseCluster"]

DEFAULT_SPLIT_THRESHOLD = 1024
CLUSTER_META_NAME = "cluster.json"


class HBaseCluster:
    """An HBase deployment: region servers, a catalog, and tables."""

    def __init__(
        self,
        num_region_servers: int = 1,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        chaos: "FaultInjector | None" = None,
        data_dir: Path | str | None = None,
        group_commit: int = 1,
    ) -> None:
        if num_region_servers < 1:
            raise ValueError("need at least one region server")
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.group_commit = group_commit
        meta = None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            meta_path = self.data_dir / CLUSTER_META_NAME
            if meta_path.exists():
                meta = json.loads(meta_path.read_text())
                num_region_servers = int(meta["num_region_servers"])
                split_threshold = int(meta["split_threshold"])
        #: Observability sinks; None falls back to the module defaults.
        #: Handed to every region server and table of this cluster.
        self.registry = registry
        self.tracer = tracer
        if chaos is None:
            # Lazy import breaks the repro.chaos <-> repro.hbase cycle;
            # resolving once at construction keeps the no-chaos fast
            # path at a single attribute check per operation.
            from ..chaos import default_injector

            chaos = default_injector()
        #: Fault injector consulted at operation boundaries (None = off).
        self.chaos = chaos
        self.servers: dict[int, RegionServer] = {
            i: RegionServer(i, registry=registry, chaos=chaos)
            for i in range(num_region_servers)
        }
        self.catalog = MetaCatalog()
        self.split_threshold = split_threshold
        self._tables: dict[str, HTable] = {}
        self._assign_cursor = 0
        self._next_region_dir = 0
        if meta is not None:
            self._restore_from_meta(meta)

    # ------------------------------------------------------------------
    # Durable region stores and the cluster meta document
    # ------------------------------------------------------------------
    def _open_region_store(self, path: Path) -> LsmStore:
        return LsmStore(
            data_dir=path,
            group_commit=self.group_commit,
            value_encoder=encode_cells,
            value_decoder=decode_cells,
            chaos=self.chaos,
            registry=self.registry,
        )

    def _region_store(self) -> LsmStore | None:
        """A backing store for one new region: durable when the cluster
        is, in-memory (``None`` → Region default) otherwise."""
        if self.data_dir is None:
            return None
        path = self.data_dir / "regions" / f"r{self._next_region_dir:05d}"
        self._next_region_dir += 1
        return self._open_region_store(path)

    def _write_meta(self) -> None:
        """Atomically rewrite ``cluster.json`` from the live topology."""
        if self.data_dir is None:
            return
        tables = {}
        for name, table in self._tables.items():
            regions = []
            for region, server_id in self.catalog.regions_of(name):
                store_dir = region.store.data_dir
                assert store_dir is not None
                regions.append(
                    {
                        "start": region.start_key,
                        "end": region.end_key,
                        "dir": str(store_dir.relative_to(self.data_dir)),
                        "server_id": server_id,
                    }
                )
            tables[name] = {"families": list(table.families), "regions": regions}
        payload = {
            "version": 1,
            "num_region_servers": len(self.servers),
            "split_threshold": self.split_threshold,
            "next_region_dir": self._next_region_dir,
            "tables": tables,
        }
        tmp = self.data_dir / (CLUSTER_META_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, self.data_dir / CLUSTER_META_NAME)

    def _restore_from_meta(self, meta: dict) -> None:
        assert self.data_dir is not None
        self._next_region_dir = int(meta.get("next_region_dir", 0))
        for name, spec in meta["tables"].items():
            families = tuple(spec["families"])
            for region_spec in spec["regions"]:
                store = self._open_region_store(self.data_dir / region_spec["dir"])
                region = Region(
                    name,
                    families,
                    start_key=region_spec["start"],
                    end_key=region_spec["end"],
                    store=store,
                )
                server = self.servers[region_spec["server_id"] % len(self.servers)]
                server.assign(region)
                self.catalog.register(region, server.server_id)
            self._tables[name] = HTable(
                name,
                families,
                self.catalog,
                self.servers,
                self.split_threshold,
                self._handle_split,
                registry=self.registry,
                tracer=self.tracer,
                chaos=self.chaos,
            )

    def flush_all(self) -> int:
        """Flush every region's memstore and refresh the meta document.

        After this, every acked write is in an SSTable and the WALs are
        empty — the store half of a snapshot.  Returns regions flushed.
        """
        flushed = sum(
            server.flush_regions() for server in self.servers.values()
        )
        self._write_meta()
        get_registry(self.registry).counter(
            "snapshot_writes_total", "cluster-wide flush-and-checkpoint passes"
        ).inc()
        return flushed

    # ------------------------------------------------------------------
    def _next_server(self) -> RegionServer:
        server = self.servers[self._assign_cursor % len(self.servers)]
        self._assign_cursor += 1
        return server

    def _handle_split(self, table_name: str, region: Region) -> None:
        """Split an oversized region and re-register its daughters."""
        del table_name  # identified by the region object itself
        region_id, server_id = self.catalog.find(region)
        make_store = self._region_store if self.data_dir is not None else None
        left, right = region.split(make_store=make_store)
        self.catalog.unregister(region_id)
        self.servers[server_id].unassign(region)
        for daughter in (left, right):
            server = self._next_server()
            server.assign(daughter)
            self.catalog.register(daughter, server.server_id)
        if self.data_dir is not None:
            # Make the daughters durable, commit the topology swap
            # atomically, and only then retire the parent's directory.
            left.store.flush()
            right.store.flush()
            self._write_meta()
            region.store.close()
            parent_dir = region.store.data_dir
            if parent_dir is not None:
                shutil.rmtree(parent_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    def create_table(self, name: str, families: tuple[str, ...]) -> HTable:
        """Create a table with its (immutable) column families."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        if not families:
            raise ValueError("a table needs at least one column family")
        region = Region(name, tuple(families), store=self._region_store())
        server = self._next_server()
        server.assign(region)
        self.catalog.register(region, server.server_id)
        table = HTable(
            name,
            tuple(families),
            self.catalog,
            self.servers,
            self.split_threshold,
            self._handle_split,
            registry=self.registry,
            tracer=self.tracer,
            chaos=self.chaos,
        )
        self._tables[name] = table
        self._write_meta()
        return table

    def table(self, name: str) -> HTable:
        table = self._tables.get(name)
        if table is None:
            raise TableNotFoundError(f"table {name!r} does not exist")
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"table {name!r} does not exist")
        for region, server_id in self.catalog.regions_of(name):
            self.servers[server_id].unassign(region)
            if self.data_dir is not None and region.store.data_dir is not None:
                region.store.close()
                shutil.rmtree(region.store.data_dir, ignore_errors=True)
        self.catalog.drop_table(name)
        del self._tables[name]
        self._write_meta()

    def tables(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    # ------------------------------------------------------------------
    def total_store_objects(self) -> int:
        """Cluster-wide in-memory Store object count (§5.2.2 metric)."""
        return sum(server.num_store_objects() for server in self.servers.values())

    def reset_metrics(self) -> None:
        for server in self.servers.values():
            server.metrics.reset()
