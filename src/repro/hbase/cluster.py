"""HBaseCluster: table lifecycle, region assignment, and splits.

The paper's deployment runs one HMaster and one HRegionServer on the
Hadoop master node; a cluster here defaults to a single region server but
supports several, with round-robin assignment of new regions and automatic
median splits once a region exceeds the split threshold — enough to observe
the data-locality and load arguments of §5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..observability import MetricsRegistry, Tracer
from .catalog import MetaCatalog
from .errors import TableExistsError, TableNotFoundError
from .region import Region
from .regionserver import RegionServer
from .table import HTable

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = ["HBaseCluster"]

DEFAULT_SPLIT_THRESHOLD = 1024


class HBaseCluster:
    """An HBase deployment: region servers, a catalog, and tables."""

    def __init__(
        self,
        num_region_servers: int = 1,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        chaos: "FaultInjector | None" = None,
    ) -> None:
        if num_region_servers < 1:
            raise ValueError("need at least one region server")
        #: Observability sinks; None falls back to the module defaults.
        #: Handed to every region server and table of this cluster.
        self.registry = registry
        self.tracer = tracer
        if chaos is None:
            # Lazy import breaks the repro.chaos <-> repro.hbase cycle;
            # resolving once at construction keeps the no-chaos fast
            # path at a single attribute check per operation.
            from ..chaos import default_injector

            chaos = default_injector()
        #: Fault injector consulted at operation boundaries (None = off).
        self.chaos = chaos
        self.servers: dict[int, RegionServer] = {
            i: RegionServer(i, registry=registry, chaos=chaos)
            for i in range(num_region_servers)
        }
        self.catalog = MetaCatalog()
        self.split_threshold = split_threshold
        self._tables: dict[str, HTable] = {}
        self._assign_cursor = 0

    # ------------------------------------------------------------------
    def _next_server(self) -> RegionServer:
        server = self.servers[self._assign_cursor % len(self.servers)]
        self._assign_cursor += 1
        return server

    def _handle_split(self, table_name: str, region: Region) -> None:
        """Split an oversized region and re-register its daughters."""
        del table_name  # identified by the region object itself
        region_id, server_id = self.catalog.find(region)
        left, right = region.split()
        self.catalog.unregister(region_id)
        self.servers[server_id].unassign(region)
        for daughter in (left, right):
            server = self._next_server()
            server.assign(daughter)
            self.catalog.register(daughter, server.server_id)

    # ------------------------------------------------------------------
    def create_table(self, name: str, families: tuple[str, ...]) -> HTable:
        """Create a table with its (immutable) column families."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        if not families:
            raise ValueError("a table needs at least one column family")
        region = Region(name, tuple(families))
        server = self._next_server()
        server.assign(region)
        self.catalog.register(region, server.server_id)
        table = HTable(
            name,
            tuple(families),
            self.catalog,
            self.servers,
            self.split_threshold,
            self._handle_split,
            registry=self.registry,
            tracer=self.tracer,
            chaos=self.chaos,
        )
        self._tables[name] = table
        return table

    def table(self, name: str) -> HTable:
        table = self._tables.get(name)
        if table is None:
            raise TableNotFoundError(f"table {name!r} does not exist")
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"table {name!r} does not exist")
        for region, server_id in self.catalog.regions_of(name):
            self.servers[server_id].unassign(region)
        self.catalog.drop_table(name)
        del self._tables[name]

    def tables(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    # ------------------------------------------------------------------
    def total_store_objects(self) -> int:
        """Cluster-wide in-memory Store object count (§5.2.2 metric)."""
        return sum(server.num_store_objects() for server in self.servers.values())

    def reset_metrics(self) -> None:
        for server in self.servers.values():
            server.metrics.reset()
