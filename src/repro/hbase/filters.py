"""Scan filters with HBase-style server-side pushdown.

HBase lets clients serialize predicate objects and ship them to region
servers, which apply them during scans so that only matching rows cross the
network (§5.3).  We reproduce that contract: every filter is a small value
object with a ``matches(row_key, row) -> bool`` method and a
``to_dict``/``from_dict`` wire format.  The registry lets the substrate
"deserialize" filters on the server side, and lets PStorM register its own
domain-specific filters (Euclidean distance, Jaccard, CFG equality) exactly
the way custom filters are deployed to HBase region servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Mapping

from .errors import UnknownFilterError

__all__ = [
    "Filter",
    "register_filter",
    "serialize_filter",
    "deserialize_filter",
    "PrefixFilter",
    "RowRangeFilter",
    "ColumnValueFilter",
    "FilterList",
]

#: A row as seen by filters: ``{family: {qualifier: value}}``.
Row = Mapping[str, Mapping[str, Any]]

_FILTER_REGISTRY: dict[str, type["Filter"]] = {}


def register_filter(cls: type["Filter"]) -> type["Filter"]:
    """Class decorator registering a filter type for deserialization."""
    _FILTER_REGISTRY[cls.filter_type] = cls
    return cls


class Filter:
    """Base filter; subclasses define ``filter_type`` and the two codecs."""

    filter_type: ClassVar[str] = "abstract"

    def matches(self, row_key: str, row: Row) -> bool:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Filter":
        raise NotImplementedError


def serialize_filter(filt: Filter) -> dict[str, Any]:
    """Client-side: encode a filter for shipping to region servers."""
    payload = filt.to_dict()
    payload["type"] = filt.filter_type
    return payload


def deserialize_filter(payload: Mapping[str, Any]) -> Filter:
    """Server-side: decode a shipped filter via the registry."""
    filter_type = payload.get("type")
    cls = _FILTER_REGISTRY.get(filter_type)
    if cls is None:
        raise UnknownFilterError(f"no filter registered for type {filter_type!r}")
    return cls.from_dict(payload)


@register_filter
@dataclass(frozen=True)
class PrefixFilter(Filter):
    """Match rows whose key starts with *prefix* (PStorM's feature-type
    prefix scan uses this)."""

    prefix: str
    filter_type: ClassVar[str] = "prefix"

    def matches(self, row_key: str, row: Row) -> bool:
        return row_key.startswith(self.prefix)

    def to_dict(self) -> dict[str, Any]:
        return {"prefix": self.prefix}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PrefixFilter":
        return cls(prefix=payload["prefix"])


@register_filter
@dataclass(frozen=True)
class RowRangeFilter(Filter):
    """Match rows with ``start <= key < stop`` (either bound optional)."""

    start: str | None = None
    stop: str | None = None
    filter_type: ClassVar[str] = "row-range"

    def matches(self, row_key: str, row: Row) -> bool:
        if self.start is not None and row_key < self.start:
            return False
        if self.stop is not None and row_key >= self.stop:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {"start": self.start, "stop": self.stop}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RowRangeFilter":
        return cls(start=payload.get("start"), stop=payload.get("stop"))


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@register_filter
@dataclass(frozen=True)
class ColumnValueFilter(Filter):
    """Compare one column's value against a constant.

    Rows missing the column do not match (HBase's
    ``setFilterIfMissing(true)`` behaviour).
    """

    family: str
    qualifier: str
    op: str
    value: Any
    filter_type: ClassVar[str] = "column-value"

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unsupported operator {self.op!r}")

    def matches(self, row_key: str, row: Row) -> bool:
        family = row.get(self.family)
        if family is None or self.qualifier not in family:
            return False
        return _OPERATORS[self.op](family[self.qualifier], self.value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "qualifier": self.qualifier,
            "op": self.op,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ColumnValueFilter":
        return cls(
            family=payload["family"],
            qualifier=payload["qualifier"],
            op=payload["op"],
            value=payload["value"],
        )


@register_filter
class FilterList(Filter):
    """AND/OR combination of filters, applied server-side as one unit."""

    filter_type: ClassVar[str] = "filter-list"

    def __init__(self, filters: list[Filter], mode: str = "AND") -> None:
        if mode not in ("AND", "OR"):
            raise ValueError("mode must be 'AND' or 'OR'")
        self.filters = list(filters)
        self.mode = mode

    def matches(self, row_key: str, row: Row) -> bool:
        if self.mode == "AND":
            return all(f.matches(row_key, row) for f in self.filters)
        return any(f.matches(row_key, row) for f in self.filters)

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "filters": [serialize_filter(f) for f in self.filters],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FilterList":
        return cls(
            filters=[deserialize_filter(p) for p in payload["filters"]],
            mode=payload["mode"],
        )

    def __repr__(self) -> str:
        return f"FilterList(mode={self.mode!r}, n={len(self.filters)})"
