"""Region servers: host regions, apply pushed-down filters, track metrics.

The §5.3 argument is quantitative: executing the matcher's filters on the
region servers ships only the surviving rows to the client, while
client-side filtering ships everything.  Region servers therefore meter
rows scanned, rows shipped, and approximate bytes shipped, and also count
one in-memory ``Store`` object per (region, column family) — the §5.2.2
argument against the table-per-feature-type model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from ..observability import MetricsRegistry, get_registry
from .filters import Filter, deserialize_filter
from .region import Region

if TYPE_CHECKING:
    from ..chaos import FaultInjector

__all__ = ["RegionServer", "ServerMetrics"]


def _approx_row_bytes(row: Mapping[str, Mapping[str, Any]]) -> int:
    """Rough wire size of a row (repr length is adequate for metering)."""
    total = 0
    for family, columns in row.items():
        total += len(family)
        for qualifier, value in columns.items():
            total += len(qualifier) + len(repr(value))
    return total


@dataclass
class ServerMetrics:
    """Cumulative scan metrics for one region server."""

    rows_scanned: int = 0
    rows_shipped: int = 0
    bytes_shipped: int = 0
    scans_served: int = 0

    def reset(self) -> None:
        self.rows_scanned = 0
        self.rows_shipped = 0
        self.bytes_shipped = 0
        self.scans_served = 0


class RegionServer:
    """One HRegionServer hosting a set of regions."""

    def __init__(
        self,
        server_id: int,
        registry: MetricsRegistry | None = None,
        chaos: "FaultInjector | None" = None,
    ) -> None:
        self.server_id = server_id
        self._regions: list[Region] = []
        self.metrics = ServerMetrics()
        #: Observability sink; None falls back to the module default.
        self.registry = registry
        #: Fault injector (resolved by the owning cluster; None = off).
        self.chaos = chaos

    # ------------------------------------------------------------------
    def assign(self, region: Region) -> None:
        self._regions.append(region)

    def unassign(self, region: Region) -> None:
        self._regions.remove(region)

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def num_store_objects(self) -> int:
        """In-memory Store objects: one per (hosted region, column family).

        This is the §5.2.2 load metric that makes one-table-per-feature-type
        strictly worse than the row-key-prefix model.
        """
        return sum(len(region.families) for region in self._regions)

    def flush_regions(self) -> int:
        """Flush every hosted region's memstore (checkpoint support).

        Returns how many regions actually flushed — regions with an
        empty memstore are no-ops, like a real HMaster-triggered flush.
        """
        flushed = 0
        for region in self._regions:
            before = region.store.flushes
            region.store.flush()
            if region.store.flushes != before:
                flushed += 1
        return flushed

    # ------------------------------------------------------------------
    def scan_region(
        self,
        region: Region,
        start: str | None = None,
        stop: str | None = None,
        filter_payload: Mapping[str, Any] | None = None,
    ) -> Iterator[tuple[str, dict[str, dict[str, Any]]]]:
        """Serve a scan over one hosted region.

        Args:
            filter_payload: a serialized filter; deserialized and applied
                *here*, before rows are shipped (the pushdown mechanism).
        """
        if region not in self._regions:
            raise ValueError(f"region {region!r} not hosted by server {self.server_id}")
        if self.chaos is not None:
            self.chaos.on_operation("scan", server_id=self.server_id)
        registry = get_registry(self.registry)
        scanned_counter = registry.counter(
            "hbase_rows_scanned_total", "rows read by region-server scans"
        )
        shipped_counter = registry.counter(
            "hbase_rows_shipped_total", "rows shipped to clients by scans"
        )
        filter_counter = registry.counter(
            "hbase_filter_evaluations_total",
            "pushed-down filter evaluations on region servers",
        )
        registry.counter(
            "hbase_scans_served_total", "scans served by region servers"
        ).inc()
        self.metrics.scans_served += 1
        filt: Filter | None = None
        if filter_payload is not None:
            filt = deserialize_filter(filter_payload)
        for row_key, row in region.scan(start, stop):
            self.metrics.rows_scanned += 1
            scanned_counter.inc()
            if filt is not None:
                filter_counter.inc()
                if not filt.matches(row_key, row):
                    continue
            self.metrics.rows_shipped += 1
            self.metrics.bytes_shipped += _approx_row_bytes(row)
            shipped_counter.inc()
            yield row_key, row

    def scan_region_batch(
        self,
        region: Region,
        start: str | None = None,
        stop: str | None = None,
        filter_payload: Mapping[str, Any] | None = None,
        batch: int = 64,
    ) -> Iterator[list[tuple[str, dict[str, dict[str, Any]]]]]:
        """Serve a scan in row *chunks* of up to ``batch`` rows each.

        The real-HBase ``Scan.setCaching``/RPC-chunking shape: one server
        round trip ships many rows.  Filtering, metering, and fault
        injection are exactly those of :meth:`scan_region` — this wraps
        the same row stream, so batched and unbatched scans ship
        identical rows in identical order.
        """
        if batch < 1:
            raise ValueError("batch must be at least 1")
        chunk: list[tuple[str, dict[str, dict[str, Any]]]] = []
        for item in self.scan_region(region, start, stop, filter_payload):
            chunk.append(item)
            if len(chunk) >= batch:
                yield chunk
                chunk = []
        if chunk:
            yield chunk
