"""The generic dataflow runtime operators.

Every compiled dataflow job runs these *same* functions — the generated
jobs differ only in the operator descriptors their job parameters carry.
This mirrors how Pig compiles scripts onto shared physical operators
(POFilter, POForEach, POPackage, ...), and it is what makes
script-generated jobs so amenable to PStorM matching: identical mapper
class names, identical CFGs, identical formatters — only the dynamic
behaviour varies with the script.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..hadoop.context import TaskContext

__all__ = ["dataflow_map", "dataflow_reduce"]


def _compare(value: Any, op: str, literal: Any) -> bool:
    if op == "==":
        return value == literal
    if op == "!=":
        return value != literal
    if op == "<":
        return value < literal
    if op == "<=":
        return value <= literal
    if op == ">":
        return value > literal
    if op == ">=":
        return value >= literal
    if op == "contains":
        return literal in value
    raise ValueError(f"unsupported comparator {op!r}")


def _apply_pipeline(record: tuple, pipeline: Sequence[tuple], context: TaskContext):
    """Run the map-side operator pipeline; yield surviving records."""
    records = [record]
    for descriptor in pipeline:
        kind = descriptor[0]
        if kind == "filter":
            __, field, op, literal = descriptor
            survivors = []
            for current in records:
                context.report_ops(1)
                if _compare(current[field], op, literal):
                    survivors.append(current)
            records = survivors
        elif kind == "project":
            __, fields, flatten = descriptor
            projected = []
            for current in records:
                row = tuple(current[field] for field in fields)
                if flatten is None:
                    projected.append(row)
                else:
                    for element in row[flatten]:
                        context.report_ops(1)
                        projected.append(
                            row[:flatten] + (element,) + row[flatten + 1:]
                        )
            records = projected
        else:
            raise ValueError(f"map pipeline cannot contain {kind!r}")
        if not records:
            return []
    return records


def dataflow_map(key: Any, record: tuple, context: TaskContext) -> None:
    """The generic map operator: pipeline, then key for the shuffle.

    Parameters (from the job's params):
        ``pipeline``: tuple of filter/project descriptors;
        ``shuffle``: the blocking descriptor this job ends in, or None
        for a map-only (store) job.
    """
    pipeline = context.get_param("pipeline", ())
    shuffle = context.get_param("shuffle")
    for row in _apply_pipeline(record, pipeline, context):
        if shuffle is None:
            context.emit(key, row)
            continue
        kind = shuffle[0]
        if kind == "group":
            keys = tuple(row[field] for field in shuffle[1])
            context.emit(keys, row)
        elif kind == "distinct":
            values = tuple(row[field] for field in shuffle[1])
            context.emit(values, None)
        elif kind == "order":
            context.emit(row[shuffle[1]], row)
        else:
            raise ValueError(f"unsupported shuffle descriptor {kind!r}")


def dataflow_reduce(key: Any, values, context: TaskContext) -> None:
    """The generic reduce operator: aggregate, dedupe, or order-emit."""
    shuffle = context.get_param("shuffle")
    if shuffle is None:
        for value in values:
            context.emit(key, value)
        return
    kind = shuffle[0]
    if kind == "group":
        aggregations = shuffle[2]
        sum_fields = {f for fn, f in aggregations if fn in ("sum", "avg")}
        min_fields = {f for fn, f in aggregations if fn == "min"}
        max_fields = {f for fn, f in aggregations if fn == "max"}
        collect_fields = {f for fn, f in aggregations if fn == "collect"}
        counts = 0
        sums = {f: 0.0 for f in sum_fields}
        minimums: dict[int, Any] = {}
        maximums: dict[int, Any] = {}
        collected: dict[int, list] = {f: [] for f in collect_fields}
        for row in values:
            counts += 1
            context.report_ops(1)
            for field in sum_fields:
                sums[field] += row[field]
            for field in min_fields:
                if field not in minimums or row[field] < minimums[field]:
                    minimums[field] = row[field]
            for field in max_fields:
                if field not in maximums or row[field] > maximums[field]:
                    maximums[field] = row[field]
            for field in collect_fields:
                collected[field].append(row[field])
        results = []
        for fn, field in aggregations:
            if fn == "count":
                results.append(counts)
            elif fn == "sum":
                results.append(sums[field])
            elif fn == "avg":
                results.append(sums[field] / counts if counts else 0.0)
            elif fn == "min":
                results.append(minimums.get(field))
            elif fn == "max":
                results.append(maximums.get(field))
            elif fn == "collect":
                results.append(tuple(collected[field]))
        # The output row carries the group keys first, then the
        # aggregation results, so downstream stages can index both.
        context.emit(key, tuple(key) + tuple(results))
    elif kind == "distinct":
        for __ in values:
            context.report_ops(1)
        context.emit(key, tuple(key))
    elif kind == "order":
        for row in values:
            context.emit(key, row)
    else:
        raise ValueError(f"unsupported shuffle descriptor {kind!r}")
