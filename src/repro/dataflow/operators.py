"""Dataflow operators: the mini Pig-Latin the compiler understands.

Chapter 1 argues MR jobs on a cluster are similar "if the jobs are
generated from high-level query languages such as Pig Latin or Hive" —
because such systems compile every script onto the *same* generic
runtime operators.  This package makes that claim executable: operators
are declarative descriptors (plain tuples of strings/numbers, so they can
ride in job parameters and keep measurement caching stable), and the
compiler lowers them onto shared generic map/reduce functions.

Supported relational operators over tuple records:

- ``filter`` — keep records where ``field <op> literal`` holds;
- ``project`` — keep a subset of fields (with optional flatten of one
  sequence-valued field, Pig's FLATTEN);
- ``group`` — group by one or more fields with aggregations
  (count/sum/avg/min/max/collect over a field);
- ``distinct`` — deduplicate on a field tuple;
- ``order`` — global sort by a field (a pure shuffle job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "FilterOp",
    "ProjectOp",
    "GroupOp",
    "Aggregation",
    "DistinctOp",
    "OrderOp",
    "COMPARATORS",
    "AGGREGATORS",
]

#: Comparison operators a filter may use.
COMPARATORS: tuple[str, ...] = ("==", "!=", "<", "<=", ">", ">=", "contains")

#: Aggregation function names a group may use.
AGGREGATORS: tuple[str, ...] = ("count", "sum", "avg", "min", "max", "collect")


@dataclass(frozen=True)
class FilterOp:
    """Keep records where ``record[field] <op> literal``."""

    field: int
    op: str
    literal: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise ValueError(f"unsupported comparator {self.op!r}")

    def descriptor(self) -> tuple:
        return ("filter", self.field, self.op, self.literal)


@dataclass(frozen=True)
class ProjectOp:
    """Keep the given fields; optionally flatten one sequence field.

    With ``flatten`` set to a position *within the projected fields*, one
    output record is emitted per element of that sequence (Pig's
    FOREACH ... FLATTEN).
    """

    fields: tuple[int, ...]
    flatten: int | None = None

    def __post_init__(self) -> None:
        if self.flatten is not None and not 0 <= self.flatten < len(self.fields):
            raise ValueError("flatten index must point into the projection")

    def descriptor(self) -> tuple:
        return ("project", tuple(self.fields), self.flatten)


@dataclass(frozen=True)
class Aggregation:
    """One aggregation inside a group: ``fn`` over ``field``."""

    fn: str
    field: int

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATORS:
            raise ValueError(f"unsupported aggregator {self.fn!r}")

    def descriptor(self) -> tuple:
        return (self.fn, self.field)


@dataclass(frozen=True)
class GroupOp:
    """Group by ``keys`` computing ``aggregations`` (a blocking operator)."""

    keys: tuple[int, ...]
    aggregations: tuple[Aggregation, ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("a group needs at least one key field")
        if not self.aggregations:
            raise ValueError("a group needs at least one aggregation")

    def descriptor(self) -> tuple:
        return (
            "group",
            tuple(self.keys),
            tuple(agg.descriptor() for agg in self.aggregations),
        )


@dataclass(frozen=True)
class DistinctOp:
    """Deduplicate on a field tuple (blocking)."""

    fields: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("distinct needs at least one field")

    def descriptor(self) -> tuple:
        return ("distinct", tuple(self.fields))


@dataclass(frozen=True)
class OrderOp:
    """Globally order by one field (blocking; a pure shuffle)."""

    field: int
    descending: bool = False

    def descriptor(self) -> tuple:
        return ("order", self.field, self.descending)
