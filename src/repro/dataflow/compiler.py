"""Compile dataflow scripts into MR job chains.

Each stage of a script — a run of filters/projections closed by a
blocking operator — becomes one :class:`MapReduceJob` whose mapper and
reducer are the *generic* runtime operators of
:mod:`repro.dataflow.runtime`, parameterized purely through job params
(serializable descriptor tuples).  Consequences, exactly as §1 predicts
for Pig/Hive-generated jobs:

- every compiled job shares MAPPER/REDUCER class names, CFGs, and
  formatters (PigStorage in, PigStorage out), so PStorM's static features
  agree across scripts;
- only the *dynamic* features differ, which is what the matcher's
  dynamics-first design is built to exploit.

Compiled chains plug into :func:`repro.core.workflows.run_chain`.
"""

from __future__ import annotations

from ..core.workflows import ChainStage
from ..hadoop.job import MapReduceJob
from .runtime import dataflow_map, dataflow_reduce
from .script import DataflowScript

__all__ = ["compile_script", "compile_to_chain"]


def compile_script(script: DataflowScript) -> list[MapReduceJob]:
    """Lower a script to one MR job per stage."""
    jobs: list[MapReduceJob] = []
    stages = script.stages()
    for index, (pipeline, blocking) in enumerate(stages):
        params = {
            "pipeline": tuple(op.descriptor() for op in pipeline),
            "shuffle": blocking.descriptor() if blocking is not None else None,
        }
        suffix = f"-s{index}" if len(stages) > 1 else ""
        jobs.append(
            MapReduceJob(
                name=f"dataflow-{script.name}{suffix}",
                mapper=dataflow_map,
                reducer=dataflow_reduce if blocking is not None else None,
                combiner=None,
                input_format="PigStorage",
                output_format="PigStorage",
                params=params,
            )
        )
    return jobs


def compile_to_chain(script: DataflowScript) -> list[ChainStage]:
    """Lower a script to workflow stages (first reads the source, the
    rest consume their predecessor's output)."""
    jobs = compile_script(script)
    stages = [ChainStage(jobs[0], input_from="source")]
    stages.extend(ChainStage(job, input_from="previous") for job in jobs[1:])
    return stages
