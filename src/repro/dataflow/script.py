"""The fluent script builder: a tiny Pig Latin.

A :class:`DataflowScript` is an ordered list of operators over one input
relation.  The builder API reads like the Pig script it stands in for::

    script = (DataflowScript("revenue-by-user")
              .filter(field=1, op="==", literal=2)          # clicks only
              .project(0, 4)                                # user, revenue
              .group_by(0, aggregations=[("sum", 1)]))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .operators import (
    Aggregation,
    DistinctOp,
    FilterOp,
    GroupOp,
    OrderOp,
    ProjectOp,
)

__all__ = ["DataflowScript"]

_BLOCKING = (GroupOp, DistinctOp, OrderOp)


@dataclass
class DataflowScript:
    """An ordered operator list over one input relation."""

    name: str
    operators: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Builder API (each call returns self for chaining).
    # ------------------------------------------------------------------
    def filter(self, field: int, op: str, literal: Any) -> "DataflowScript":
        """Keep records where ``record[field] <op> literal``."""
        self.operators.append(FilterOp(field=field, op=op, literal=literal))
        return self

    def project(self, *fields: int, flatten: int | None = None) -> "DataflowScript":
        """Keep *fields*; optionally FLATTEN one projected sequence field."""
        self.operators.append(ProjectOp(fields=tuple(fields), flatten=flatten))
        return self

    def group_by(
        self, *keys: int, aggregations: Sequence[tuple[str, int]]
    ) -> "DataflowScript":
        """Group by *keys*, computing ``(fn, field)`` aggregations."""
        self.operators.append(
            GroupOp(
                keys=tuple(keys),
                aggregations=tuple(Aggregation(fn, f) for fn, f in aggregations),
            )
        )
        return self

    def distinct(self, *fields: int) -> "DataflowScript":
        """Deduplicate on a field tuple."""
        self.operators.append(DistinctOp(fields=tuple(fields)))
        return self

    def order_by(self, field: int, descending: bool = False) -> "DataflowScript":
        """Globally order by one field."""
        self.operators.append(OrderOp(field=field, descending=descending))
        return self

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check operator composition rules.

        Blocking operators end a stage; field indices after a blocking
        operator refer to its *output* shape, which only the author can
        know, so only composition structure is validated here.
        """
        if not self.operators:
            raise ValueError(f"script {self.name!r} has no operators")

    def stages(self) -> list[tuple[list, Any]]:
        """Partition the operators into MR stages.

        Each stage is ``(map pipeline, blocking operator or None)``: the
        longest run of filters/projections, closed by the next blocking
        operator.  A trailing non-blocking run becomes a map-only stage.
        """
        self.validate()
        result: list[tuple[list, Any]] = []
        pipeline: list = []
        for op in self.operators:
            if isinstance(op, _BLOCKING):
                result.append((pipeline, op))
                pipeline = []
            else:
                pipeline.append(op)
        if pipeline or not result:
            result.append((pipeline, None))
        return result
