"""Dataflow layer: a tiny Pig Latin compiled onto generic MR operators.

Makes §1's observation executable: jobs generated from a high-level query
language share static structure (operators, formatters, CFGs) and differ
only dynamically — the regime PStorM's matcher thrives in.
"""

from .compiler import compile_script, compile_to_chain
from .operators import (
    AGGREGATORS,
    COMPARATORS,
    Aggregation,
    DistinctOp,
    FilterOp,
    GroupOp,
    OrderOp,
    ProjectOp,
)
from .runtime import dataflow_map, dataflow_reduce
from .script import DataflowScript

__all__ = [
    "compile_script",
    "compile_to_chain",
    "AGGREGATORS",
    "COMPARATORS",
    "Aggregation",
    "DistinctOp",
    "FilterOp",
    "GroupOp",
    "OrderOp",
    "ProjectOp",
    "dataflow_map",
    "dataflow_reduce",
    "DataflowScript",
]
