"""CloudBurst-style read alignment (Schatz, Bioinformatics 2009).

Seed-and-extend alignment as MapReduce: the mapper emits fixed-length
k-mer seeds from both the tagged reference chunks and the query reads;
each reducer receives all sequences sharing a seed and extends reference/
read pairs, emitting alignments below a mismatch budget.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["cloudburst_job"]

SEED_LENGTH = 12


def cloudburst_map(key: object, record: tuple, context: TaskContext) -> None:
    """Emit (seed k-mer, (tag, sequence, offset)) seeds.

    Reference chunks shed a seed at every offset (dense); reads shed
    non-overlapping seeds only (sparse), as in CloudBurst.
    """
    tag, sequence = record
    if tag == "REF":
        step = 4
    else:
        step = SEED_LENGTH
    offset = 0
    while offset + SEED_LENGTH <= len(sequence):
        seed = sequence[offset:offset + SEED_LENGTH]
        context.emit(seed, (tag, sequence, offset))
        offset += step


def cloudburst_reduce(seed: str, hits, context: TaskContext) -> None:
    """Extend reference/read pairs sharing this seed."""
    max_mismatches = context.get_param("max_mismatches", 4)
    references = []
    reads = []
    for tag, sequence, offset in hits:
        if tag == "REF":
            references.append((sequence, offset))
        else:
            reads.append((sequence, offset))
        context.report_ops(1)
    for read_seq, read_off in reads:
        for ref_seq, ref_off in references:
            mismatches = _extend(read_seq, read_off, ref_seq, ref_off)
            context.report_ops(len(read_seq))
            if mismatches <= max_mismatches:
                context.emit(seed, (read_seq, ref_off - read_off, mismatches))


def _extend(read_seq: str, read_off: int, ref_seq: str, ref_off: int) -> int:
    """Count mismatches aligning the read against the reference chunk."""
    start = ref_off - read_off
    mismatches = 0
    for i, base in enumerate(read_seq):
        position = start + i
        if 0 <= position < len(ref_seq):
            if ref_seq[position] != base:
                mismatches += 1
        else:
            mismatches += 1
    return mismatches


def cloudburst_job(max_mismatches: int = 4) -> MapReduceJob:
    """The CloudBurst-style alignment job."""
    return MapReduceJob(
        name="cloudburst",
        mapper=cloudburst_map,
        reducer=cloudburst_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
        params={"max_mismatches": max_mismatches},
    )
