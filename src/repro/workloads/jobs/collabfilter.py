"""Item-based collaborative filtering: a two-job Mahout-style pipeline.

Job 1 groups ratings per user and emits co-rated movie pairs with rating
products (the expensive quadratic step); job 2 aggregates pair scores into
item-item similarities.  Run on the MovieLens-style 1M and 10M rating
sets per Table 6.1.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["cf_user_vectors_job", "cf_similarity_job"]


def cf_user_vectors_map(user: int, rating: tuple, context: TaskContext) -> None:
    """Re-key one (movie, rating) observation by its user."""
    context.emit(user, rating)


def cf_user_vectors_reduce(user: int, ratings, context: TaskContext) -> None:
    """Emit co-rated movie pairs with rating products for one user."""
    vector = []
    for movie, score in ratings:
        vector.append((movie, score))
        context.report_ops(1)
    vector.sort()
    for i in range(len(vector)):
        for j in range(i + 1, len(vector)):
            movie_a, score_a = vector[i]
            movie_b, score_b = vector[j]
            context.emit((movie_a, movie_b), score_a * score_b)


def cf_user_vectors_job() -> MapReduceJob:
    """CF phase 1: per-user co-rated pair generation."""
    return MapReduceJob(
        name="cf-user-vectors",
        mapper=cf_user_vectors_map,
        reducer=cf_user_vectors_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
    )


def cf_similarity_map(user: int, rating: tuple, context: TaskContext) -> None:
    """Emit pairwise contributions directly (sampled-pair variant).

    Phase 2 of the real pipeline consumes phase 1 output; feeding it the
    rating stream re-keyed into per-record pair contributions exercises
    the same shuffle and aggregation path.
    """
    movie, score = rating
    if score <= 0:
        context.report_ops(1)
        return
    partner = (movie * 31 + 7) % context.get_param("num_movies", 3900)
    context.emit((min(movie, partner), max(movie, partner)), score)


def cf_similarity_reduce(pair, scores, context: TaskContext) -> None:
    """Aggregate pair contributions into one similarity score."""
    total = 0.0
    count = 0
    for score in scores:
        total += score
        count += 1
        context.report_ops(1)
    context.emit(pair, total / count)


def cf_similarity_job(num_movies: int = 3900) -> MapReduceJob:
    """CF phase 2: item-item similarity aggregation."""
    return MapReduceJob(
        name="cf-similarity",
        mapper=cf_similarity_map,
        reducer=cf_similarity_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
        params={"num_movies": num_movies},
    )
