"""Sort: the identity job over TeraGen records.

Map and reduce are both identity functions — all the work happens in the
framework's sort/shuffle machinery, making this the purest test of buffer
and merge parameters.  Its map size selectivity is exactly 1, the §4.1.1
example of a stable dynamic feature.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["sort_job"]


def sort_map(key: str, value: str, context: TaskContext) -> None:
    """Identity: pass the record through keyed for the global sort."""
    context.emit(key, value)


def sort_reduce(key: str, values, context: TaskContext) -> None:
    """Identity: write each value back out under its key."""
    for value in values:
        context.emit(key, value)


def sort_job() -> MapReduceJob:
    """The Sort job (TeraSort without the custom range partitioner)."""
    return MapReduceJob(
        name="sort",
        mapper=sort_map,
        reducer=sort_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
    )
