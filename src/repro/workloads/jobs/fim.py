"""Frequent itemset mining: a three-job chain over webdocs transactions.

The paper's FIM workload (from Mahout-era parallel FP-growth style
pipelines) is a chain of three MR jobs (§6.1.1 notes their profiles have
no twins because the chain ran on a single dataset):

1. **item counting** — classic support counting per item;
2. **pair counting** — support counting of candidate item pairs (items
   hashed against a support-threshold filter the driver distributes);
3. **aggregation** — group discovered pairs per leading item and keep the
   top-k most supported.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["fim_item_count_job", "fim_pair_count_job", "fim_aggregate_job"]


def fim_item_count_map(tid: object, items: tuple, context: TaskContext) -> None:
    """Emit (item, 1) per item of the transaction."""
    for item in items:
        context.emit(item, 1)


def fim_item_count_reduce(item: int, counts, context: TaskContext) -> None:
    """Sum the support of one item."""
    support = 0
    for count in counts:
        support += count
        context.report_ops(1)
    context.emit(item, support)


def fim_item_count_job() -> MapReduceJob:
    """FIM phase 1: item support counting."""
    return MapReduceJob(
        name="fim-item-count",
        mapper=fim_item_count_map,
        reducer=fim_item_count_reduce,
        combiner=fim_item_count_reduce,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
    )


def fim_pair_count_map(tid: object, items: tuple, context: TaskContext) -> None:
    """Emit candidate pairs of *likely frequent* items.

    The driver distributes a frequency filter from phase 1; we model it as
    a hash-based threshold on the Zipf-skewed item ids (low ids frequent).
    """
    threshold = context.get_param("frequent_item_cutoff", 200)
    frequent = [item for item in items if item < threshold]
    context.report_ops(len(items))
    for i in range(len(frequent)):
        for j in range(i + 1, len(frequent)):
            context.emit((frequent[i], frequent[j]), 1)


def fim_pair_count_reduce(pair, counts, context: TaskContext) -> None:
    """Sum the support of one candidate pair, dropping rare ones."""
    min_support = context.get_param("min_support", 2)
    support = 0
    for count in counts:
        support += count
        context.report_ops(1)
    if support >= min_support:
        context.emit(pair, support)


def fim_pair_count_job(
    frequent_item_cutoff: int = 200, min_support: int = 2
) -> MapReduceJob:
    """FIM phase 2: candidate pair support counting."""
    return MapReduceJob(
        name="fim-pair-count",
        mapper=fim_pair_count_map,
        reducer=fim_pair_count_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="SequenceFileOutputFormat",
        params={
            "frequent_item_cutoff": frequent_item_cutoff,
            "min_support": min_support,
        },
    )


def fim_aggregate_map(tid: object, items: tuple, context: TaskContext) -> None:
    """Re-key discovered pairs by their leading item.

    Phase 3 consumes phase 2 output in the real chain; statistically the
    transaction stream re-keyed by leading item exercises the same path.
    """
    threshold = context.get_param("frequent_item_cutoff", 200)
    for index, item in enumerate(items):
        if item < threshold and index + 1 < len(items):
            context.emit(item, tuple(items[index + 1:]))
        else:
            context.report_ops(1)


def fim_aggregate_reduce(item: int, tail_lists, context: TaskContext) -> None:
    """Keep the top-k co-occurring items of one leading item."""
    top_k = context.get_param("top_k", 5)
    support: dict[int, int] = {}
    for tail in tail_lists:
        for other in tail:
            support[other] = support.get(other, 0) + 1
            context.report_ops(1)
    ranked = sorted(support.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    context.emit(item, tuple(ranked))


def fim_aggregate_job(frequent_item_cutoff: int = 200, top_k: int = 5) -> MapReduceJob:
    """FIM phase 3: per-item top-k aggregation."""
    return MapReduceJob(
        name="fim-aggregate",
        mapper=fim_aggregate_map,
        reducer=fim_aggregate_reduce,
        combiner=None,
        input_format="SequenceFileInputFormat",
        output_format="TextOutputFormat",
        params={"frequent_item_cutoff": frequent_item_cutoff, "top_k": top_k},
    )
