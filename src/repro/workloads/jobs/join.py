"""Join: a TPC-H-style repartition join of ORDERS and LINEITEM.

The mapper tags each row with its table and keys it by order key; each
reducer buffers the (single) ORDERS row of a key and emits one joined
tuple per LINEITEM partner.  The input formatter is the composite
formatter feeding both tables — one of the paper's examples of an input
formatter that changes READ_HDFS_IO_COST (§4.1.2).
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["join_job"]


def join_map(key: object, row: tuple, context: TaskContext) -> None:
    """Tag and re-key one input row by its join key."""
    table = row[0]
    order_key = row[1]
    if table == "ORDERS":
        context.emit(order_key, ("O", row[2:]))
    else:
        context.emit(order_key, ("L", row[2:]))


def join_reduce(order_key: int, tagged_rows, context: TaskContext) -> None:
    """Join the ORDERS row of this key with each LINEITEM row."""
    orders = []
    lineitems = []
    for tag, payload in tagged_rows:
        if tag == "O":
            orders.append(payload)
        else:
            lineitems.append(payload)
        context.report_ops(1)
    for order in orders:
        for lineitem in lineitems:
            context.emit(order_key, order + lineitem)


def join_job() -> MapReduceJob:
    """The repartition join job."""
    return MapReduceJob(
        name="tpch-join",
        mapper=join_map,
        reducer=join_reduce,
        combiner=None,
        input_format="CompositeInputFormat",
        output_format="TextOutputFormat",
    )
