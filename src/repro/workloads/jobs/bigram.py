"""Bigram relative frequency (Lin & Dyer).

Counts the frequency of each word pair *(a, b)* relative to the frequency
of *a*: the mapper emits one pair count plus one marginal count
``((a, '*'), 1)`` per bigram; a first-word partitioner routes a word's
marginal and all its pairs to the same reducer, which sees the marginal
first (the ``'*'`` sorts before words) and divides.

With a window of 2, the co-occurrence pairs job and this job process text
nearly identically — the profile-reuse motivating example of Chapter 1
(Figs 1.3 and 4.5).
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob, default_partitioner

__all__ = ["bigram_relative_frequency_job"]


def bigram_map(key: object, line: str, context: TaskContext) -> None:
    """Emit ((a, b), 1) and the marginal ((a, '*'), 1) per bigram."""
    words = line.split()
    for i in range(len(words) - 1):
        if words[i]:
            context.emit((words[i], words[i + 1]), 1)
            context.emit((words[i], "*"), 1)


def bigram_combine(pair, counts, context: TaskContext) -> None:
    """Partial sums of pair and marginal counts."""
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(pair, total)


class _MarginalState:
    """Per-reducer running marginal; reset whenever the first word changes.

    The real implementation keeps this in the reducer instance across
    ``reduce()`` calls; module state plays that role here.
    """

    word: str | None = None
    total: int = 0


_state = _MarginalState()


def bigram_reduce(pair, counts, context: TaskContext) -> None:
    """Divide each pair count by its first word's marginal count."""
    first, second = pair
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    if second == "*":
        _state.word = first
        _state.total = total
        return
    if _state.word == first and _state.total > 0:
        context.emit(pair, total / _state.total)
    else:
        context.emit(pair, float(total))


def bigram_partitioner(pair, num_partitions: int) -> int:
    """Route by the first word so marginals meet their pairs."""
    return default_partitioner(pair[0], num_partitions)


def bigram_relative_frequency_job() -> MapReduceJob:
    """The bigram relative frequency job."""
    return MapReduceJob(
        name="bigram-relative-frequency",
        mapper=bigram_map,
        reducer=bigram_reduce,
        combiner=bigram_combine,
        partitioner=bigram_partitioner,
        input_format="TextInputFormat",
        output_format="TextOutputFormat",
    )
