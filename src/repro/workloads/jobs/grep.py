"""Grep: count lines matching a search keyword.

§7.2.1 uses grep as the example of a job whose execution profile depends
on a *user parameter* (the search term): a rare term filters almost
everything map-side (tiny selectivity), a common one passes most lines.
The keyword is a job parameter, making this the natural test subject for
the user-parameter static-feature extension.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["grep_job"]


def grep_map(key: object, line: str, context: TaskContext) -> None:
    """Emit (keyword, 1) when the line contains the keyword."""
    keyword = context.get_param("pattern", "w0001")
    context.report_ops(1)
    if keyword in line:
        context.emit(keyword, 1)


def grep_reduce(keyword: str, counts, context: TaskContext) -> None:
    """Total match count of the keyword."""
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(keyword, total)


def grep_job(pattern: str = "w0001") -> MapReduceJob:
    """The grep job searching for *pattern*."""
    return MapReduceJob(
        name="grep",
        mapper=grep_map,
        reducer=grep_reduce,
        combiner=grep_reduce,
        input_format="TextInputFormat",
        output_format="TextOutputFormat",
        params={"pattern": pattern},
    )
