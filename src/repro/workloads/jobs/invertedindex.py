"""Inverted index (Lin & Dyer): word -> posting list of documents.

The mapper emits ``(word, doc_id)`` once per distinct word of a document
line; the reducer assembles the sorted posting list.  There is no
combiner — postings are not meaningfully combinable map-side in this
formulation — which matters for tuning: Fig 6.3 shows the default
configuration is already close to optimal for this job and the RBO's
blanket rules actually hurt it.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["inverted_index_job"]


def inverted_index_map(doc_id: object, line: str, context: TaskContext) -> None:
    """Emit (word, doc id) for each distinct word in the line."""
    seen = set()
    for word in line.split():
        if word not in seen:
            seen.add(word)
            context.emit(word, int(doc_id) if isinstance(doc_id, int) else 0)
        else:
            context.report_ops(1)


def inverted_index_reduce(word: str, doc_ids, context: TaskContext) -> None:
    """Assemble the sorted posting list of one word."""
    postings = []
    for doc_id in doc_ids:
        postings.append(doc_id)
        context.report_ops(1)
    postings.sort()
    context.emit(word, tuple(postings))


def inverted_index_job() -> MapReduceJob:
    """The inverted index job (no combiner)."""
    return MapReduceJob(
        name="inverted-index",
        mapper=inverted_index_map,
        reducer=inverted_index_reduce,
        combiner=None,
        input_format="TextInputFormat",
        output_format="MapFileOutputFormat",
    )
