"""The Table 6.1 benchmark MR jobs, one module per job family."""

from .bigram import bigram_relative_frequency_job
from .cloudburst import cloudburst_job
from .collabfilter import cf_similarity_job, cf_user_vectors_job
from .cooccurrence import cooccurrence_pairs_job, cooccurrence_stripes_job
from .fim import fim_aggregate_job, fim_item_count_job, fim_pair_count_job
from .grep import grep_job
from .invertedindex import inverted_index_job
from .join import join_job
from .pigmix import PIGMIX_QUERY_COUNT, pigmix_all_jobs, pigmix_job
from .sort import sort_job
from .wordcount import word_count_job

__all__ = [
    "bigram_relative_frequency_job",
    "cloudburst_job",
    "cf_similarity_job",
    "cf_user_vectors_job",
    "cooccurrence_pairs_job",
    "cooccurrence_stripes_job",
    "fim_aggregate_job",
    "fim_item_count_job",
    "fim_pair_count_job",
    "grep_job",
    "inverted_index_job",
    "join_job",
    "PIGMIX_QUERY_COUNT",
    "pigmix_all_jobs",
    "pigmix_job",
    "sort_job",
    "word_count_job",
]
