"""Word Count: the canonical text-mining MR job (Table 6.1).

Emits one ``(word, 1)`` pair per token; the reducer (doubling as the
combiner, since summation is associative and commutative) adds the counts.
The map CFG is the single-loop graph of Fig 4.2(a).
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["word_count_job"]


def word_count_map(key: object, line: str, context: TaskContext) -> None:
    """Tokenize one line and emit each word with count 1 (Algorithm 1)."""
    for word in line.split():
        context.emit(word, 1)


def word_count_reduce(word: str, counts, context: TaskContext) -> None:
    """Sum the counts of one word."""
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(word, total)


def word_count_job() -> MapReduceJob:
    """The Word Count job with its combiner enabled."""
    return MapReduceJob(
        name="word-count",
        mapper=word_count_map,
        reducer=word_count_reduce,
        combiner=word_count_reduce,
        input_format="TextInputFormat",
        output_format="TextOutputFormat",
    )
