"""Word co-occurrence: the *pairs* and *stripes* patterns of Lin & Dyer.

The pairs variant (Algorithm 2) emits one ``((w_i, w_j), 1)`` pair for
every pair of words inside a sliding window of length *n*; its map output
is much larger than its input, which is why the paper's Fig 6.3 shows a
~9x tuning speedup for it — the default single reducer and 100 MB sort
buffer drown in the intermediate data.

The stripes variant emits one associative array (``{neighbor: count}``)
per word, trading many small records for fewer, larger, more memory-hungry
ones; the paper notes it failed with memory exceptions on the 35 GB corpus
(§6.1.1), which is why it appears on only one dataset in Table 6.1.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["cooccurrence_pairs_job", "cooccurrence_stripes_job"]

DEFAULT_WINDOW = 2


def cooccurrence_pairs_map(key: object, line: str, context: TaskContext) -> None:
    """Emit ((w_i, w_j), 1) for j in the window after i (Algorithm 2)."""
    window = context.get_param("window", DEFAULT_WINDOW)
    words = line.split()
    for i in range(len(words)):
        if words[i]:
            for j in range(i + 1, min(i + window + 1, len(words))):
                context.emit((words[i], words[j]), 1)


def cooccurrence_pairs_reduce(pair, counts, context: TaskContext) -> None:
    """Sum co-occurrence counts of one word pair."""
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(pair, total)


def cooccurrence_pairs_job(window: int = DEFAULT_WINDOW) -> MapReduceJob:
    """The word co-occurrence *pairs* job with sliding window *window*."""
    return MapReduceJob(
        name="word-cooccurrence-pairs",
        mapper=cooccurrence_pairs_map,
        reducer=cooccurrence_pairs_reduce,
        combiner=cooccurrence_pairs_reduce,
        input_format="TextInputFormat",
        output_format="TextOutputFormat",
        params={"window": window},
    )


def cooccurrence_stripes_map(key: object, line: str, context: TaskContext) -> None:
    """Emit one stripe {neighbor: count} per word occurrence."""
    window = context.get_param("window", DEFAULT_WINDOW)
    words = line.split()
    for i in range(len(words)):
        if not words[i]:
            continue
        stripe: dict[str, int] = {}
        for j in range(i + 1, min(i + window + 1, len(words))):
            stripe[words[j]] = stripe.get(words[j], 0) + 1
            context.report_ops(1)
        if stripe:
            context.emit(words[i], stripe)


def cooccurrence_stripes_reduce(word: str, stripes, context: TaskContext) -> None:
    """Element-wise sum of the stripes of one word."""
    merged: dict[str, int] = {}
    for stripe in stripes:
        for neighbor, count in stripe.items():
            merged[neighbor] = merged.get(neighbor, 0) + count
            context.report_ops(1)
    context.emit(word, merged)


def cooccurrence_stripes_job(window: int = DEFAULT_WINDOW) -> MapReduceJob:
    """The word co-occurrence *stripes* job."""
    return MapReduceJob(
        name="word-cooccurrence-stripes",
        mapper=cooccurrence_stripes_map,
        reducer=cooccurrence_stripes_reduce,
        combiner=cooccurrence_stripes_reduce,
        input_format="TextInputFormat",
        output_format="SequenceFileOutputFormat",
        params={"window": window},
    )
