"""PigMix-style queries L1-L17 over page_views rows.

Table 6.1 includes the 17 PigMix benchmark queries.  PigMix scripts compile
to MR jobs whose mappers project/filter/explode page_views fields and whose
reducers aggregate, deduplicate, join, or sort — so each Lk below is a
hand-compiled equivalent of the corresponding PigMix latency query, giving
the profile store a large population of *related but distinct* jobs, which
is exactly the regime PStorM's matcher is designed for.

A page_views value is ``(user, action, timespent, term, revenue, links)``.
"""

from __future__ import annotations

from ...hadoop.context import TaskContext
from ...hadoop.job import MapReduceJob

__all__ = ["pigmix_job", "pigmix_all_jobs", "PIGMIX_QUERY_COUNT"]

PIGMIX_QUERY_COUNT = 17

#: Users with ids below this hash cutoff play the role of the small
#: ``users`` side table PigMix joins against.
_KNOWN_USER_CUTOFF = 4000


def _user_id(user: str) -> int:
    return int(user[1:])


# ----------------------------------------------------------------------
# L1: explode the page_links bag and count link references.
# ----------------------------------------------------------------------
def l1_map(key, row, context: TaskContext) -> None:
    """Flatten page_links, one pair per referenced page."""
    links = row[5]
    for link in links:
        context.emit(link, 1)


def l1_reduce(link, counts, context: TaskContext) -> None:
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(link, total)


# ----------------------------------------------------------------------
# L2: project user/revenue for views by known users (broadcast join).
# ----------------------------------------------------------------------
def l2_map(key, row, context: TaskContext) -> None:
    """Filter to known users, project (user, revenue)."""
    user = row[0]
    context.report_ops(1)
    if _user_id(user) < _KNOWN_USER_CUTOFF:
        context.emit(user, row[4])


def l2_reduce(user, revenues, context: TaskContext) -> None:
    total = 0.0
    for revenue in revenues:
        total += revenue
        context.report_ops(1)
    context.emit(user, total)


# ----------------------------------------------------------------------
# L3: join page_views with users and sum revenue per user.
# ----------------------------------------------------------------------
def l3_map(key, row, context: TaskContext) -> None:
    """Tag page view rows for the repartition join against users."""
    user = row[0]
    context.emit(user, ("V", row[4]))
    if _user_id(user) < _KNOWN_USER_CUTOFF:
        context.emit(user, ("U", user))


def l3_reduce(user, tagged, context: TaskContext) -> None:
    revenues = []
    known = False
    for tag, payload in tagged:
        if tag == "U":
            known = True
        else:
            revenues.append(payload)
        context.report_ops(1)
    if known:
        context.emit(user, sum(revenues))


# ----------------------------------------------------------------------
# L4: distinct actions per user.
# ----------------------------------------------------------------------
def l4_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], row[1])


def l4_reduce(user, actions, context: TaskContext) -> None:
    distinct = set()
    for action in actions:
        distinct.add(action)
        context.report_ops(1)
    context.emit(user, len(distinct))


# ----------------------------------------------------------------------
# L5: anti-join — views by *unknown* users.
# ----------------------------------------------------------------------
def l5_map(key, row, context: TaskContext) -> None:
    user = row[0]
    context.report_ops(1)
    if _user_id(user) >= _KNOWN_USER_CUTOFF:
        context.emit(user, 1)


def l5_reduce(user, counts, context: TaskContext) -> None:
    total = 0
    for count in counts:
        total += count
        context.report_ops(1)
    context.emit(user, total)


# ----------------------------------------------------------------------
# L6: sum timespent per user (wide group-by).
# ----------------------------------------------------------------------
def l6_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], row[2])


def l6_reduce(user, times, context: TaskContext) -> None:
    total = 0
    for timespent in times:
        total += timespent
        context.report_ops(1)
    context.emit(user, total)


# ----------------------------------------------------------------------
# L7: top timespent per user (nested sort / max).
# ----------------------------------------------------------------------
def l7_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], (row[2], row[3]))


def l7_reduce(user, visits, context: TaskContext) -> None:
    best = None
    for timespent, term in visits:
        if best is None or timespent > best[0]:
            best = (timespent, term)
        context.report_ops(1)
    context.emit(user, best)


# ----------------------------------------------------------------------
# L8: global aggregates (one group).
# ----------------------------------------------------------------------
def l8_map(key, row, context: TaskContext) -> None:
    context.emit("all", (row[2], row[4], 1))


def l8_reduce(group, triples, context: TaskContext) -> None:
    time_total = 0
    revenue_total = 0.0
    count = 0
    for timespent, revenue, one in triples:
        time_total += timespent
        revenue_total += revenue
        count += one
        context.report_ops(1)
    context.emit(group, (time_total, revenue_total / max(1, count)))


# ----------------------------------------------------------------------
# L9: order by query term (sort job shape).
# ----------------------------------------------------------------------
def l9_map(key, row, context: TaskContext) -> None:
    context.emit(row[3], row)


def l9_reduce(term, rows, context: TaskContext) -> None:
    for row in rows:
        context.emit(term, row)


# ----------------------------------------------------------------------
# L10: order by (term, timespent desc) — compound sort key.
# ----------------------------------------------------------------------
def l10_map(key, row, context: TaskContext) -> None:
    context.emit((row[3], -row[2]), row)


def l10_reduce(sort_key, rows, context: TaskContext) -> None:
    for row in rows:
        context.emit(sort_key, row)


# ----------------------------------------------------------------------
# L11: distinct users (wide distinct).
# ----------------------------------------------------------------------
def l11_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], None)


def l11_reduce(user, markers, context: TaskContext) -> None:
    for __ in markers:
        context.report_ops(1)
    context.emit(user, 1)


# ----------------------------------------------------------------------
# L12: multi-store split by action.
# ----------------------------------------------------------------------
def l12_map(key, row, context: TaskContext) -> None:
    action = row[1]
    if action == 1:
        context.emit(("view", row[0]), row[2])
    elif action == 2:
        context.emit(("click", row[0]), row[4])
    else:
        context.emit(("other", row[0]), 1)


def l12_reduce(stream_key, values, context: TaskContext) -> None:
    total = 0.0
    for value in values:
        total += value
        context.report_ops(1)
    context.emit(stream_key, total)


# ----------------------------------------------------------------------
# L13: left outer join with the users table.
# ----------------------------------------------------------------------
def l13_map(key, row, context: TaskContext) -> None:
    user = row[0]
    context.emit(user, ("V", row[4]))
    if _user_id(user) < _KNOWN_USER_CUTOFF // 2:
        context.emit(user, ("U", 1))


def l13_reduce(user, tagged, context: TaskContext) -> None:
    revenues = []
    known = False
    for tag, payload in tagged:
        if tag == "U":
            known = True
        else:
            revenues.append(payload)
        context.report_ops(1)
    context.emit(user, (sum(revenues), known))


# ----------------------------------------------------------------------
# L14: merge-join shape — pre-sorted keys, pass-through aggregation.
# ----------------------------------------------------------------------
def l14_map(key, row, context: TaskContext) -> None:
    context.emit((row[0], row[1]), row[2])


def l14_reduce(compound_key, times, context: TaskContext) -> None:
    total = 0
    for timespent in times:
        total += timespent
        context.report_ops(1)
    context.emit(compound_key, total)


# ----------------------------------------------------------------------
# L15: per-user action histogram with percentages.
# ----------------------------------------------------------------------
def l15_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], row[1])


def l15_reduce(user, actions, context: TaskContext) -> None:
    histogram: dict[int, int] = {}
    count = 0
    for action in actions:
        histogram[action] = histogram.get(action, 0) + 1
        count += 1
        context.report_ops(1)
    shares = tuple(
        (action, histogram[action] / count) for action in sorted(histogram)
    )
    context.emit(user, shares)


# ----------------------------------------------------------------------
# L16: accumulate per-user revenue lists.
# ----------------------------------------------------------------------
def l16_map(key, row, context: TaskContext) -> None:
    context.emit(row[0], row[4])


def l16_reduce(user, revenues, context: TaskContext) -> None:
    values = []
    for revenue in revenues:
        values.append(revenue)
        context.report_ops(1)
    values.sort()
    context.emit(user, tuple(values))


# ----------------------------------------------------------------------
# L17: wide group by (user, term) with two aggregates.
# ----------------------------------------------------------------------
def l17_map(key, row, context: TaskContext) -> None:
    context.emit((row[0], row[3]), (row[2], row[4]))


def l17_reduce(group_key, pairs, context: TaskContext) -> None:
    time_total = 0
    revenue_total = 0.0
    for timespent, revenue in pairs:
        time_total += timespent
        revenue_total += revenue
        context.report_ops(1)
    context.emit(group_key, (time_total, revenue_total))


#: Query number -> (mapper, reducer, combiner, output format).
_QUERIES = {
    1: (l1_map, l1_reduce, l1_reduce, "TextOutputFormat"),
    2: (l2_map, l2_reduce, l2_reduce, "TextOutputFormat"),
    3: (l3_map, l3_reduce, None, "TextOutputFormat"),
    4: (l4_map, l4_reduce, None, "TextOutputFormat"),
    5: (l5_map, l5_reduce, l5_reduce, "TextOutputFormat"),
    6: (l6_map, l6_reduce, l6_reduce, "TextOutputFormat"),
    7: (l7_map, l7_reduce, None, "TextOutputFormat"),
    8: (l8_map, l8_reduce, None, "TextOutputFormat"),
    9: (l9_map, l9_reduce, None, "SequenceFileOutputFormat"),
    10: (l10_map, l10_reduce, None, "SequenceFileOutputFormat"),
    11: (l11_map, l11_reduce, l11_reduce, "TextOutputFormat"),
    12: (l12_map, l12_reduce, l12_reduce, "SequenceFileOutputFormat"),
    13: (l13_map, l13_reduce, None, "TextOutputFormat"),
    14: (l14_map, l14_reduce, l14_reduce, "TextOutputFormat"),
    15: (l15_map, l15_reduce, None, "TextOutputFormat"),
    16: (l16_map, l16_reduce, None, "SequenceFileOutputFormat"),
    17: (l17_map, l17_reduce, None, "TextOutputFormat"),
}


def pigmix_job(query: int) -> MapReduceJob:
    """The PigMix-style query ``L<query>`` as a compiled MR job."""
    if query not in _QUERIES:
        raise ValueError(f"PigMix query must be 1..{PIGMIX_QUERY_COUNT}")
    mapper, reducer, combiner, output_format = _QUERIES[query]
    return MapReduceJob(
        name=f"pigmix-l{query}",
        mapper=mapper,
        reducer=reducer,
        combiner=combiner,
        input_format="PigStorage",
        output_format=output_format,
    )


def pigmix_all_jobs() -> list[MapReduceJob]:
    """All 17 PigMix query jobs, in order."""
    return [pigmix_job(i) for i in range(1, PIGMIX_QUERY_COUNT + 1)]
