"""The Table 6.1 benchmark: (job, dataset) pairs.

Most jobs run on two datasets ("profile twins", §6.1); the word
co-occurrence stripes job and the FIM chain run on one dataset each, which
is why they produce the DD-state mismatches the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hadoop.dataset import Dataset
from ..hadoop.job import MapReduceJob
from . import datasets as ds
from .jobs import (
    PIGMIX_QUERY_COUNT,
    bigram_relative_frequency_job,
    cf_similarity_job,
    cf_user_vectors_job,
    cloudburst_job,
    cooccurrence_pairs_job,
    cooccurrence_stripes_job,
    fim_aggregate_job,
    fim_item_count_job,
    fim_pair_count_job,
    inverted_index_job,
    join_job,
    pigmix_job,
    sort_job,
    word_count_job,
)

__all__ = ["BenchmarkEntry", "standard_benchmark", "compact_benchmark"]


@dataclass(frozen=True)
class BenchmarkEntry:
    """One benchmark run: a job on a dataset, with a domain label."""

    job: MapReduceJob
    dataset: Dataset
    domain: str

    @property
    def key(self) -> str:
        """Unique identifier of this (job, dataset) pair."""
        return f"{self.job.name}@{self.dataset.name}"


def _text_datasets() -> tuple[Dataset, Dataset]:
    return ds.random_text_1gb(), ds.wikipedia_35gb()


def standard_benchmark(pigmix_queries: int = PIGMIX_QUERY_COUNT) -> list[BenchmarkEntry]:
    """The full Table 6.1 suite.

    Args:
        pigmix_queries: how many of the 17 PigMix queries to include
            (lowering this speeds up accuracy experiments ~linearly
            without changing their structure).
    """
    text_small, text_large = _text_datasets()
    entries: list[BenchmarkEntry] = []

    entries.append(
        BenchmarkEntry(cloudburst_job(), ds.genome_dataset("sample", 200), "Bioinformatics")
    )
    entries.append(
        BenchmarkEntry(cloudburst_job(), ds.genome_dataset("lakewash", 1100), "Bioinformatics")
    )

    webdocs = ds.webdocs_dataset()
    entries.append(BenchmarkEntry(fim_item_count_job(), webdocs, "Data Mining"))
    entries.append(BenchmarkEntry(fim_pair_count_job(), webdocs, "Data Mining"))
    entries.append(BenchmarkEntry(fim_aggregate_job(), webdocs, "Data Mining"))

    for millions in (1, 10):
        ratings = ds.movielens_dataset(millions)
        entries.append(
            BenchmarkEntry(cf_user_vectors_job(), ratings, "Recommendation Systems")
        )
        entries.append(
            BenchmarkEntry(cf_similarity_job(), ratings, "Recommendation Systems")
        )

    for gb in (1, 35):
        entries.append(
            BenchmarkEntry(join_job(), ds.tpch_dataset(gb), "Business Intelligence")
        )

    for text in (text_small, text_large):
        entries.append(BenchmarkEntry(word_count_job(), text, "Text Mining"))
        entries.append(BenchmarkEntry(inverted_index_job(), text, "Text Mining"))
        entries.append(
            BenchmarkEntry(
                bigram_relative_frequency_job(), text, "Natural Language Processing"
            )
        )
        entries.append(
            BenchmarkEntry(
                cooccurrence_pairs_job(), text, "Natural Language Processing"
            )
        )

    for gb in (1, 35):
        entries.append(BenchmarkEntry(sort_job(), ds.teragen_dataset(gb), "Many Domains"))

    for gb in (1, 35):
        pig_data = ds.pigmix_dataset(gb)
        for query in range(1, pigmix_queries + 1):
            entries.append(BenchmarkEntry(pigmix_job(query), pig_data, "Pig Benchmark"))

    entries.append(
        BenchmarkEntry(
            cooccurrence_stripes_job(),
            text_small,
            "Natural Language Processing",
        )
    )
    return entries


def compact_benchmark() -> list[BenchmarkEntry]:
    """A reduced suite (4 PigMix queries) for fast experiment iterations."""
    return standard_benchmark(pigmix_queries=4)
