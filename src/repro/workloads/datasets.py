"""The Table 6.1 datasets, as seeded synthetic generators.

Every dataset the paper's benchmark runs on has a synthetic equivalent
here with the *nominal* size of the original (which drives split counts,
wave counts and shuffle volumes) and a deterministic per-split record
sample (which drives measured selectivities).  See DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hadoop.dataset import Dataset
from .text import random_text_source, wikipedia_source

__all__ = [
    "random_text_1gb",
    "wikipedia_35gb",
    "tpch_dataset",
    "teragen_dataset",
    "movielens_dataset",
    "webdocs_dataset",
    "genome_dataset",
    "pigmix_dataset",
]

GB = 1 << 30


def random_text_1gb() -> Dataset:
    """1 GB of random text (word count / inverted index / bigram / co-oc)."""
    return Dataset("random-text-1gb", nominal_bytes=GB, source=random_text_source(), seed=101)


def wikipedia_35gb() -> Dataset:
    """35 GB of Wikipedia documents (571-ish splits on 64 MB blocks)."""
    return Dataset("wikipedia-35gb", nominal_bytes=35 * GB, source=wikipedia_source(), seed=102)


# ----------------------------------------------------------------------
# TPC-H-style join inputs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TpchSource:
    """A tagged mix of ORDERS and LINEITEM rows sharing order keys.

    A reduce-side (repartition) join consumes a single tagged stream, so a
    split interleaves rows of both tables.  Order keys are drawn from a
    bounded range so joins actually find partners across splits.
    """

    rows_per_split: int = 300
    orders_fraction: float = 0.25
    key_space: int = 50_000

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, tuple]]:
        records = []
        for i in range(self.rows_per_split):
            order_key = int(rng.integers(0, self.key_space))
            if rng.random() < self.orders_fraction:
                row = (
                    "ORDERS",
                    order_key,
                    f"cust{int(rng.integers(0, 5000)):05d}",
                    round(float(rng.uniform(10.0, 5000.0)), 2),
                    f"1996-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}",
                )
            else:
                row = (
                    "LINEITEM",
                    order_key,
                    int(rng.integers(1, 8)),
                    int(rng.integers(1, 51)),
                    round(float(rng.uniform(1.0, 100.0)), 2),
                    round(float(rng.uniform(0.0, 0.1)), 2),
                )
            records.append((i, row))
        return records


def tpch_dataset(nominal_gb: int) -> Dataset:
    """TPC-H-style tagged ORDERS+LINEITEM rows (1 GB and 35 GB variants)."""
    return Dataset(
        f"tpch-{nominal_gb}gb",
        nominal_bytes=nominal_gb * GB,
        source=TpchSource(),
        seed=200 + nominal_gb,
    )


# ----------------------------------------------------------------------
# TeraGen-style sort input
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TeraGenSource:
    """TeraGen's 100-byte records: 10-char random key, 90-char payload."""

    rows_per_split: int = 400

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[str, str]]:
        alphabet = np.array(list("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"))
        records = []
        for __ in range(self.rows_per_split):
            key = "".join(rng.choice(alphabet, size=10))
            payload = "".join(rng.choice(alphabet, size=90))
            records.append((key, payload))
        return records


def teragen_dataset(nominal_gb: int) -> Dataset:
    """TeraGen records for the Sort job (1 GB and 35 GB variants)."""
    return Dataset(
        f"teragen-{nominal_gb}gb",
        nominal_bytes=nominal_gb * GB,
        source=TeraGenSource(),
        seed=300 + nominal_gb,
    )


# ----------------------------------------------------------------------
# MovieLens-style ratings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RatingsSource:
    """(user, (movie, rating)) tuples with Zipfian movie popularity."""

    rows_per_split: int = 350
    num_users: int = 6000
    num_movies: int = 3900

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, tuple[int, float]]]:
        records = []
        for __ in range(self.rows_per_split):
            user = int(rng.integers(0, self.num_users))
            movie = int(rng.zipf(1.3)) % self.num_movies
            rating = float(rng.integers(1, 11)) / 2.0
            records.append((user, (movie, rating)))
        return records


def movielens_dataset(millions: int) -> Dataset:
    """Movie ratings (the 1M and 10M MovieLens-style sets).

    Nominal size approximates the on-disk size of the rating files.
    """
    scale = {1: 24 * (1 << 20), 10: 252 * (1 << 20)}
    if millions not in scale:
        raise ValueError("movielens_dataset supports 1 or 10 (millions)")
    users = 6000 if millions == 1 else 72000
    movies = 3900 if millions == 1 else 10600
    return Dataset(
        f"movielens-{millions}m",
        nominal_bytes=scale[millions],
        source=RatingsSource(num_users=users, num_movies=movies),
        split_bytes=16 * (1 << 20),
        seed=400 + millions,
    )


# ----------------------------------------------------------------------
# Webdocs-style transactions (frequent itemset mining)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransactionsSource:
    """(tid, frozenset of item ids): market-basket style transactions."""

    rows_per_split: int = 260
    num_items: int = 2000
    min_items: int = 3
    max_items: int = 15

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, tuple[int, ...]]]:
        records = []
        for tid in range(self.rows_per_split):
            count = int(rng.integers(self.min_items, self.max_items + 1))
            items = sorted(
                {int(rng.zipf(1.35)) % self.num_items for __ in range(count)}
            )
            records.append((tid, tuple(items)))
        return records


def webdocs_dataset() -> Dataset:
    """The 1.5 GB webdocs transaction set (frequent itemset mining)."""
    return Dataset(
        "webdocs-1.5gb",
        nominal_bytes=int(1.5 * GB),
        source=TransactionsSource(),
        seed=500,
    )


# ----------------------------------------------------------------------
# Genome reads (CloudBurst-style alignment)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GenomeSource:
    """Tagged reference chunks and short reads over {A, C, G, T}.

    CloudBurst aligns reads against a reference; its map input interleaves
    reference sequence chunks and query reads, tagged accordingly.
    """

    rows_per_split: int = 220
    reference_fraction: float = 0.3
    read_length: int = 36
    chunk_length: int = 120

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, tuple[str, str]]]:
        bases = np.array(list("ACGT"))
        records = []
        for i in range(self.rows_per_split):
            if rng.random() < self.reference_fraction:
                seq = "".join(rng.choice(bases, size=self.chunk_length))
                records.append((i, ("REF", seq)))
            else:
                seq = "".join(rng.choice(bases, size=self.read_length))
                records.append((i, ("READ", seq)))
        return records


def genome_dataset(name: str, nominal_mb: int) -> Dataset:
    """A genome read set: ``sample`` or ``lakewash`` scale."""
    return Dataset(
        f"genome-{name}",
        nominal_bytes=nominal_mb * (1 << 20),
        source=GenomeSource(),
        split_bytes=32 * (1 << 20),
        seed=600 + nominal_mb,
    )


# ----------------------------------------------------------------------
# PigMix-style page views
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PageViewsSource:
    """PigMix's page_views schema: (user, action, timespent, query_term,
    estimated_revenue, page_links)."""

    rows_per_split: int = 280
    num_users: int = 20000
    num_terms: int = 800

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, tuple]]:
        records = []
        for i in range(self.rows_per_split):
            user = f"u{int(rng.zipf(1.3)) % self.num_users:06d}"
            action = int(rng.integers(1, 4))
            timespent = int(rng.integers(1, 300))
            term = f"t{int(rng.zipf(1.4)) % self.num_terms:04d}"
            revenue = round(float(rng.uniform(0.0, 50.0)), 2)
            num_links = int(rng.integers(0, 6))
            links = tuple(
                f"p{int(rng.integers(0, 9999)):04d}" for __ in range(num_links)
            )
            records.append((i, (user, action, timespent, term, revenue, links)))
        return records


def pigmix_dataset(nominal_gb: int) -> Dataset:
    """PigMix page_views data (1 GB and 35 GB variants)."""
    return Dataset(
        f"pigmix-{nominal_gb}gb",
        nominal_bytes=nominal_gb * GB,
        source=PageViewsSource(),
        seed=700 + nominal_gb,
    )
