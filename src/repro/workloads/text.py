"""Synthetic text corpora.

Stand-ins for the paper's text datasets: "1 GB of random text" and "35 GB
of Wikipedia documents".  Both are Zipf-distributed word streams — natural
language word frequencies are famously Zipfian — differing in vocabulary
size, line length, and skew, so jobs measure *different* selectivities on
the two corpora (which is what makes the DD store state a real test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ZipfTextSource", "random_text_source", "wikipedia_source"]


def _vocabulary(size: int) -> list[str]:
    """Deterministic pseudo-words ``w000…``; longer words are rarer, like
    real text (rank-correlated word length)."""
    words = []
    for rank in range(size):
        stem = f"w{rank:04d}"
        suffix = "x" * (rank % 7)
        words.append(stem + suffix)
    return words


@dataclass(frozen=True)
class ZipfTextSource:
    """Lines of Zipf-distributed words, keyed by byte offset.

    Attributes:
        vocabulary_size: distinct words available.
        zipf_s: Zipf exponent (larger = more skew).
        lines_per_split: sample lines materialized per split.
        min_words / max_words: line length range.
    """

    vocabulary_size: int = 4000
    zipf_s: float = 1.4
    lines_per_split: int = 250
    min_words: int = 6
    max_words: int = 14

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[int, str]]:
        words = _vocabulary(self.vocabulary_size)
        records = []
        offset = 0
        for __ in range(self.lines_per_split):
            count = int(rng.integers(self.min_words, self.max_words + 1))
            ranks = rng.zipf(self.zipf_s, size=count)
            line = " ".join(
                words[int(rank - 1) % self.vocabulary_size] for rank in ranks
            )
            records.append((offset, line))
            offset += len(line) + 1
        return records


def random_text_source() -> ZipfTextSource:
    """The '1 GB of random text' corpus: small vocabulary, short lines."""
    return ZipfTextSource(
        vocabulary_size=1500,
        zipf_s=1.25,
        lines_per_split=250,
        min_words=5,
        max_words=12,
    )


def wikipedia_source() -> ZipfTextSource:
    """The '35 GB of Wikipedia documents' corpus: large vocabulary,
    longer sentences, heavier skew."""
    return ZipfTextSource(
        vocabulary_size=8000,
        zipf_s=1.5,
        lines_per_split=220,
        min_words=9,
        max_words=22,
    )
