"""PStorM reproduction: profile storage and matching for feedback-based
tuning of MapReduce jobs (Ead, Herodotou, Aboulnaga, Babu — EDBT 2014).

Subpackages:

- :mod:`repro.hadoop` — Hadoop MapReduce execution simulator.
- :mod:`repro.hbase` — column-family profile store substrate.
- :mod:`repro.analysis` — static analysis (CFG extraction and matching).
- :mod:`repro.starfish` — profiler, sampler, What-If engine, CBO, RBO.
- :mod:`repro.core` — PStorM: feature vectors, profile store, matcher.
- :mod:`repro.workloads` — the Table 6.1 benchmark jobs and datasets.
- :mod:`repro.dataflow` — a mini Pig Latin over generic MR operators.
- :mod:`repro.perfxplain` — performance-explanation engine (§2.3.2).
- :mod:`repro.experiments` — drivers regenerating every table and figure.

The most common entry points are re-exported here::

    from repro import PStorM, HadoopEngine, ec2_cluster
"""

from .core.pstorm import PStorM, SubmissionResult
from .hadoop.cluster import ec2_cluster
from .hadoop.config import JobConfiguration
from .hadoop.engine import HadoopEngine
from .hadoop.job import MapReduceJob

__version__ = "1.0.0"

__all__ = [
    "PStorM",
    "SubmissionResult",
    "ec2_cluster",
    "JobConfiguration",
    "HadoopEngine",
    "MapReduceJob",
    "__version__",
]
